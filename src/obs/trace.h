// Per-task trace spans (ISSUE 2 + ISSUE 8, DESIGN.md §5b/§5d): every task
// attempt leaves two spans — a `queued` span (submission → dispatch) and a
// `run` span (dispatch → terminal state) — tagged with worker id, attempt
// number and outcome; the causal-tracing layer adds `ingest`, `refit`,
// `decision` and `recovery` spans around them. Spans land in a bounded
// ring buffer that overwrites its oldest entries, so a long-lived process
// keeps the most recent window of activity at fixed memory cost; every
// overwrite is accounted in the `obs.trace.dropped_spans` counter (visible
// in /metrics and /snapshot.json), so a consumer can tell a quiet system
// from one whose ring is thrashing.
//
// Causal lineage (ISSUE 8): a span may carry a 128-bit trace id, its own
// 64-bit span id and a parent span id (obs/trace_context.h), plus
// free-form key/value attributes (claim id, shard, engine, …). Spans of
// one trace form a tree — ingest span → Work Queue attempt spans
// (including retries and speculative duplicates) → refit/recovery spans →
// decision — reconstructible via /trace.json?trace_id=…
//
// Timestamps are runtime-relative seconds (the emitting clock: WorkQueue's
// master stopwatch or SimCluster's simulated clock). The Chrome exporter
// (obs/export.h) turns the spans into `trace_event` JSON — with flow
// events stitching parent→child edges across threads — that loads in
// about:tracing / Perfetto.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sstd::obs {

enum class SpanPhase : std::uint8_t {
  kQueued,    // task attempt: submission → dispatch
  kRun,       // task attempt: dispatch → terminal state
  kIngest,    // a sampled report entering the system
  kRefit,     // one per-claim Baum-Welch refit
  kDecision,  // a claim's estimate flipped
  kRecovery,  // shard or node rebuild from snapshot + WAL replay
};

enum class SpanOutcome : std::uint8_t {
  kDispatched,  // queued span: left the queue onto a worker
  kDone,        // run span: attempt produced the result
  kFailed,      // run span: attempt failed, retries exhausted (quarantine)
  kRetried,     // run span: attempt failed, a retry was scheduled
  kAborted,     // run span: fast-abort cancelled the attempt
  kEvicted,     // run span: worker crash took the attempt down
};

const char* span_phase_name(SpanPhase phase);
const char* span_outcome_name(SpanOutcome outcome);

struct TraceSpan {
  std::uint64_t task = 0;
  std::uint32_t job = 0;
  std::uint32_t worker = 0;
  int attempt = 0;  // 0-based attempt index
  SpanPhase phase = SpanPhase::kRun;
  SpanOutcome outcome = SpanOutcome::kDone;
  bool speculative = false;
  double begin_s = 0.0;
  double end_s = 0.0;

  // Causal lineage (zero = untraced span, the pre-ISSUE-8 shape).
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;

  // Key/value attributes (claim id, shard, engine, interval, …).
  // Recording copies them into the ring; span recording happens at task
  // state transitions and sampled events, rare enough that the
  // allocations don't register.
  std::vector<std::pair<std::string, std::string>> attrs;

  bool traced() const { return (trace_hi | trace_lo) != 0; }
  // First value for `key`; empty when absent.
  const std::string& attr(const std::string& key) const;
};

// Bounded, thread-safe span sink. Recording is a short critical section
// (move into a preallocated slot); recording happens at task state
// transitions, orders of magnitude rarer than counter increments.
class TraceRecorder {
 public:
  // Drop accounting lands in `registry` as obs.trace.dropped_spans /
  // obs.trace.recorded_spans counters (surfaced via /metrics and
  // /snapshot.json). A ring that wraps silently would hide exactly the
  // evidence a post-incident trace query needs.
  explicit TraceRecorder(std::size_t capacity = 8192,
                         MetricsRegistry* registry = nullptr);

  void record(TraceSpan span);

  // Retained spans, oldest first.
  std::vector<TraceSpan> snapshot() const;
  // Retained spans of one trace, oldest first.
  std::vector<TraceSpan> trace(std::uint64_t trace_hi,
                               std::uint64_t trace_lo) const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  // Total spans ever recorded / overwritten by ring wrap-around.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  void clear();

  // Process-wide default recorder the runtime records into (drop
  // accounting in the global registry).
  static TraceRecorder& global();

 private:
  const std::size_t capacity_;
  Counter* recorded_counter_;
  Counter* dropped_counter_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;
  std::size_t next_ = 0;  // slot the next span lands in once full
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace sstd::obs
