// Per-task trace spans (ISSUE 2, DESIGN.md §5b): every task attempt leaves
// two spans — a `queued` span (submission → dispatch) and a `run` span
// (dispatch → terminal state) — tagged with worker id, attempt number and
// outcome. Spans land in a bounded ring buffer that overwrites its oldest
// entries, so a long-lived process keeps the most recent window of
// activity at fixed memory cost.
//
// Timestamps are runtime-relative seconds (the emitting clock: WorkQueue's
// master stopwatch or SimCluster's simulated clock). The Chrome exporter
// (obs/export.h) turns the spans into `trace_event` JSON that loads in
// about:tracing / Perfetto.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace sstd::obs {

enum class SpanPhase : std::uint8_t { kQueued, kRun };

enum class SpanOutcome : std::uint8_t {
  kDispatched,  // queued span: left the queue onto a worker
  kDone,        // run span: attempt produced the result
  kFailed,      // run span: attempt failed, retries exhausted (quarantine)
  kRetried,     // run span: attempt failed, a retry was scheduled
  kAborted,     // run span: fast-abort cancelled the attempt
  kEvicted,     // run span: worker crash took the attempt down
};

const char* span_phase_name(SpanPhase phase);
const char* span_outcome_name(SpanOutcome outcome);

struct TraceSpan {
  std::uint64_t task = 0;
  std::uint32_t job = 0;
  std::uint32_t worker = 0;
  int attempt = 0;  // 0-based attempt index
  SpanPhase phase = SpanPhase::kRun;
  SpanOutcome outcome = SpanOutcome::kDone;
  bool speculative = false;
  double begin_s = 0.0;
  double end_s = 0.0;
};

// Bounded, thread-safe span sink. Recording is a short critical section
// (copy into a preallocated slot); recording happens at task state
// transitions, orders of magnitude rarer than counter increments.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 8192);

  void record(const TraceSpan& span);

  // Retained spans, oldest first.
  std::vector<TraceSpan> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  // Total spans ever recorded / overwritten by ring wrap-around.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  void clear();

  // Process-wide default recorder the runtime records into.
  static TraceRecorder& global();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> ring_;
  std::size_t next_ = 0;  // slot the next span lands in once full
  std::uint64_t total_ = 0;
};

}  // namespace sstd::obs
