#include "obs/log_bridge.h"

#include "util/log.h"

namespace sstd::obs {

void install_log_metrics_bridge(MetricsRegistry* registry) {
  Counter* messages = registry->counter("log.messages_total");
  Counter* warns = registry->counter("log.warn_total");
  Counter* errors = registry->counter("log.error_total");
  set_log_observer(
      [messages, warns, errors](LogLevel level, std::string_view,
                                std::string_view) {
        messages->inc();
        if (level == LogLevel::kWarn) warns->inc();
        if (level == LogLevel::kError) errors->inc();
      });
}

void uninstall_log_metrics_bridge() { set_log_observer({}); }

}  // namespace sstd::obs
