// Soak-invariant monitor (ISSUE 9, DESIGN.md §8): turns the gauges the
// runtime already exports (proc.* self-stats, stream.decision_staleness_s,
// obs.trace/provenance drop counters) into an enforceable contract for
// long runs:
//
//   bounded-rss        — post-warmup RSS must not grow past
//                        baseline * (1 + max_rss_growth_ratio) + slack
//                        (and an optional absolute cap); a leaky claim
//                        map or unbounded ring shows up here
//   staleness-slo      — the p-quantile of ingest→decision staleness must
//                        stay under the SLO
//   drop-rate-growth   — trace-span and provenance-ring drops per report
//                        must not grow monotonically (a rising drop rate
//                        means the rings are being outrun ever harder —
//                        the observable shadow of a backlog building up)
//
// Usage: call sample() on a steady cadence (the soak driver samples once
// per interval); evaluate() judges the collected series and returns every
// violation with a human-readable detail line. The series evaluation is a
// pure function (evaluate_series), so tests can feed synthetic series
// without a live process behind them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace sstd::obs {

struct SoakLimits {
  // RSS bound: violation when post-warmup peak exceeds
  // baseline * (1 + max_rss_growth_ratio) AND baseline + rss_slack_bytes.
  // The slack term keeps small-footprint smoke runs from flagging
  // allocator noise as growth.
  double max_rss_growth_ratio = 0.35;
  std::uint64_t rss_slack_bytes = 96ull << 20;
  // Optional absolute ceiling (0 = none).
  std::uint64_t max_rss_bytes = 0;

  // Staleness SLO on the chosen quantile of stream.decision_staleness_s.
  double staleness_slo_s = 5.0;
  double staleness_quantile = 0.95;

  // Ring-drop growth: mean drops-per-report over the newest third of the
  // post-warmup series must not exceed growth_factor x the mean over the
  // preceding third (and must be non-trivial in absolute terms).
  double drop_rate_growth_factor = 2.0;

  // Samples ignored while the process reaches steady state.
  std::size_t warmup_samples = 3;
};

struct SoakSample {
  double wall_s = 0.0;
  std::uint64_t rss_bytes = 0;
  std::uint64_t reports_ingested = 0;
  double staleness_p50 = 0.0;  // NaN while the histogram is empty
  double staleness_p95 = 0.0;
  double staleness_p99 = 0.0;
  std::uint64_t trace_dropped_spans = 0;
  std::uint64_t provenance_dropped_records = 0;
  double active_claims = 0.0;
};

struct SoakViolation {
  std::string invariant;  // "bounded-rss" | "staleness-slo" | ...
  std::string detail;
};

struct SoakReport {
  std::vector<SoakViolation> violations;
  std::uint64_t baseline_rss_bytes = 0;  // post-warmup baseline
  std::uint64_t peak_rss_bytes = 0;      // post-warmup peak
  double staleness_p95 = 0.0;            // final cumulative quantiles
  double staleness_p99 = 0.0;
  std::uint64_t trace_dropped_spans = 0;
  std::uint64_t provenance_dropped_records = 0;

  bool ok() const { return violations.empty(); }
};

class SoakMonitor {
 public:
  explicit SoakMonitor(SoakLimits limits,
                       MetricsRegistry* registry = &MetricsRegistry::global());

  // Reads the current process + registry state into a new sample and
  // returns it. Also refreshes the proc.* gauges (obs/proc_stats.h).
  const SoakSample& sample();

  // Judges the collected series against the limits.
  SoakReport evaluate() const { return evaluate_series(samples_, limits_); }

  const std::vector<SoakSample>& samples() const { return samples_; }
  const SoakLimits& limits() const { return limits_; }

  // Pure evaluation over an arbitrary series — unit-testable without a
  // live process.
  static SoakReport evaluate_series(const std::vector<SoakSample>& samples,
                                    const SoakLimits& limits);

 private:
  SoakLimits limits_;
  MetricsRegistry* registry_;
  std::vector<SoakSample> samples_;
  Stopwatch watch_;
};

}  // namespace sstd::obs
