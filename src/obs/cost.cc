#include "obs/cost.h"

#include <time.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/export.h"
#include "obs/metrics.h"

namespace sstd::obs {
namespace {

constexpr double kNsPerSec = 1e9;

std::uint64_t to_ns(double seconds) {
  if (!(seconds > 0.0)) return 0;
  return static_cast<std::uint64_t>(seconds * kNsPerSec + 0.5);
}

thread_local CostScope* g_current_scope = nullptr;

}  // namespace

double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) / kNsPerSec;
#else
  return 0.0;
#endif
}

void CostCenter::add(double wall_s, double cpu_s, std::uint64_t count) {
  count_.fetch_add(count, std::memory_order_relaxed);
  wall_ns_.fetch_add(to_ns(wall_s), std::memory_order_relaxed);
  cpu_ns_.fetch_add(to_ns(cpu_s), std::memory_order_relaxed);
}

void CostCenter::add_child_time(double wall_s, double cpu_s) {
  child_wall_ns_.fetch_add(to_ns(wall_s), std::memory_order_relaxed);
  child_cpu_ns_.fetch_add(to_ns(cpu_s), std::memory_order_relaxed);
}

void CostCenter::reset() {
  count_.store(0, std::memory_order_relaxed);
  wall_ns_.store(0, std::memory_order_relaxed);
  cpu_ns_.store(0, std::memory_order_relaxed);
  child_wall_ns_.store(0, std::memory_order_relaxed);
  child_cpu_ns_.store(0, std::memory_order_relaxed);
}

const CostNodeSnapshot* CostTreeSnapshot::node(const std::string& path) const {
  for (const CostNodeSnapshot& n : nodes) {
    if (n.path == path) return &n;
  }
  return nullptr;
}

double CostTreeSnapshot::subtree_wall_s(const std::string& prefix) const {
  // nodes are sorted by path, so a matched node covers every node that
  // follows with its path + '/' as prefix; summing only uncovered matches
  // avoids double-counting path children inside their parent's total.
  double sum = 0.0;
  std::string covered;  // empty = nothing covered yet
  for (const CostNodeSnapshot& n : nodes) {
    const bool in_subtree =
        n.path == prefix ||
        (n.path.size() > prefix.size() && n.path.compare(0, prefix.size(), prefix) == 0 &&
         n.path[prefix.size()] == '/');
    if (!in_subtree) continue;
    if (!covered.empty() && n.path.size() > covered.size() &&
        n.path.compare(0, covered.size(), covered) == 0 &&
        n.path[covered.size()] == '/') {
      continue;  // already inside a counted ancestor's total
    }
    sum += n.total_wall_s;
    covered = n.path;
  }
  return sum;
}

double CostTreeSnapshot::total_self_wall_s() const {
  double sum = 0.0;
  for (const CostNodeSnapshot& n : nodes) sum += n.self_wall_s;
  return sum;
}

std::string CostTreeSnapshot::to_json() const {
  std::ostringstream out;
  out.precision(9);
  out << "{\"nodes\":[";
  bool first = true;
  for (const CostNodeSnapshot& n : nodes) {
    if (!first) out << ',';
    first = false;
    out << "{\"path\":\"" << json_escape(n.path) << "\",\"count\":" << n.count
        << ",\"total_wall_s\":" << n.total_wall_s
        << ",\"self_wall_s\":" << n.self_wall_s
        << ",\"total_cpu_s\":" << n.total_cpu_s
        << ",\"self_cpu_s\":" << n.self_cpu_s << '}';
  }
  out << "]}";
  return out.str();
}

CostCenter* CostRegistry::center(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto it = centers_.find(path);
  if (it == centers_.end()) {
    it = centers_.emplace(path, std::make_unique<CostCenter>(path)).first;
  }
  return it->second.get();
}

CostTreeSnapshot CostRegistry::snapshot() const {
  CostTreeSnapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  snap.nodes.reserve(centers_.size());
  for (const auto& [path, center] : centers_) {
    CostNodeSnapshot n;
    n.path = path;
    n.count = center->count();
    n.total_wall_s = static_cast<double>(center->wall_ns()) / kNsPerSec;
    n.total_cpu_s = static_cast<double>(center->cpu_ns()) / kNsPerSec;
    const double child_wall =
        static_cast<double>(center->child_wall_ns()) / kNsPerSec;
    const double child_cpu =
        static_cast<double>(center->child_cpu_ns()) / kNsPerSec;
    n.self_wall_s = std::max(0.0, n.total_wall_s - child_wall);
    n.self_cpu_s = std::max(0.0, n.total_cpu_s - child_cpu);
    snap.nodes.push_back(std::move(n));
  }
  // std::map iteration is already path-sorted; keep the invariant explicit.
  std::sort(snap.nodes.begin(), snap.nodes.end(),
            [](const CostNodeSnapshot& a, const CostNodeSnapshot& b) {
              return a.path < b.path;
            });
  return snap;
}

void CostRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, center] : centers_) center->reset();
}

void CostRegistry::publish_gauges(MetricsRegistry& registry) const {
  const CostTreeSnapshot snap = snapshot();
  for (const CostNodeSnapshot& n : snap.nodes) {
    std::string dotted = n.path;
    std::replace(dotted.begin(), dotted.end(), '/', '.');
    const std::string base = "cost." + dotted;
    registry.gauge(base + ".total_s")->set(n.total_wall_s);
    registry.gauge(base + ".self_s")->set(n.self_wall_s);
    registry.gauge(base + ".count")->set(static_cast<double>(n.count));
  }
}

CostRegistry& CostRegistry::global() {
  static CostRegistry* instance = new CostRegistry();
  return *instance;
}

void cost_add(CostCenter* center, double wall_s, double cpu_s,
              std::uint64_t count) {
  if (center != nullptr) center->add(wall_s, cpu_s, count);
  if (g_current_scope != nullptr) {
    g_current_scope->child_wall_s_ += wall_s;
    g_current_scope->child_cpu_s_ += cpu_s;
  }
}

CostScope::CostScope(CostCenter* center, Mode mode)
    : center_(center),
      parent_(g_current_scope),
      mode_(mode),
      wall_begin_(std::chrono::steady_clock::now()) {
  if (mode_ == kWallAndCpu) cpu_begin_s_ = thread_cpu_seconds();
  g_current_scope = this;
}

CostScope::~CostScope() {
  // The CPU clock is read before the wall end so the wall bracket stays
  // outermost: clock_gettime(CLOCK_THREAD_CPUTIME_ID) is a real syscall,
  // and syscall exit is where the kernel acts on pending preemption — on
  // a contended core most involuntary descheduling lands exactly there.
  // Reading wall first would systematically exclude that delay from this
  // scope while any enclosing timer still sees it.
  const double cpu_s =
      mode_ == kWallAndCpu ? thread_cpu_seconds() - cpu_begin_s_ : 0.0;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_begin_)
          .count();
  g_current_scope = parent_;
  if (center_ != nullptr) {
    center_->add(wall_s, cpu_s);
    center_->add_child_time(child_wall_s_, child_cpu_s_);
  }
  if (parent_ != nullptr) {
    parent_->child_wall_s_ += wall_s;
    parent_->child_cpu_s_ += cpu_s;
  }
}

CostScope* CostScope::current() { return g_current_scope; }

}  // namespace sstd::obs
