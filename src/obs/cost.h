// Hierarchical phase cost attribution (ISSUE 10, DESIGN.md §5e): where do
// the cycles actually go inside refit/decode/ingest/WAL paths?
//
// The runtime is annotated with RAII `CostScope` timers under stable,
// '/'-separated phase paths (`ingest/quantize`, `refit/forward`,
// `refit/mstep`, `decode/viterbi`, `wal/append`, `snapshot/write`,
// `serve/scrape`, ...). Each scope measures wall time (steady_clock) and —
// unless opened wall-only — thread CPU time (CLOCK_THREAD_CPUTIME_ID).
// Scopes nest: a scope that closes inside another scope on the same thread
// credits its elapsed time to the enclosing scope's *child* accumulators,
// so a snapshot can split every node into
//
//   total time  — time with the node open (children included), and
//   self  time  — total minus dynamically nested children: the node's own
//                 work, the number a perf PR should attack.
//
// Accumulation is a handful of relaxed atomic adds on a pre-resolved
// `CostCenter*` — no locks, no allocation, safe from any thread — so
// concurrent shard tasks merge into one tree for free and a snapshot is a
// consistent point-in-time read. The tree shape itself comes from the path
// strings at snapshot time, which keeps the hot path free of any parent
// bookkeeping beyond one thread-local pointer.
//
// Consumption surfaces: `/cost.json` on the HTTP exposition server,
// `cost.*` gauges published into a MetricsRegistry (ridden by the
// timeseries sampler), and top-k cost-center embedding in the bench JSON
// artifacts (`bench_soak --profile`, `bench_micro_hmm --profile`).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sstd::obs {

class MetricsRegistry;

// Thread CPU clock (CLOCK_THREAD_CPUTIME_ID) in seconds; 0.0 where the
// platform lacks it. A syscall on most kernels (~100 ns) — which is why
// kernel-inner scopes run wall-only.
double thread_cpu_seconds();

// One named node of the cost tree. All accumulators are relaxed atomics
// in nanoseconds; pointers stay valid for the registry's lifetime.
class CostCenter {
 public:
  explicit CostCenter(std::string path) : path_(std::move(path)) {}
  CostCenter(const CostCenter&) = delete;
  CostCenter& operator=(const CostCenter&) = delete;

  const std::string& path() const { return path_; }

  // Raw reads (tests, snapshot).
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t wall_ns() const {
    return wall_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t cpu_ns() const {
    return cpu_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t child_wall_ns() const {
    return child_wall_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t child_cpu_ns() const {
    return child_cpu_ns_.load(std::memory_order_relaxed);
  }

  // Direct accumulation for pre-measured spans (the kernel EM loop batches
  // its per-iteration clock reads and flushes once per fit). Does NOT
  // credit the enclosing scope — use cost_add() for that.
  void add(double wall_s, double cpu_s, std::uint64_t count = 1);
  // Credits time spent in dynamically nested children (CostScope and
  // cost_add do this automatically).
  void add_child_time(double wall_s, double cpu_s);

  void reset();

 private:
  std::string path_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> wall_ns_{0};
  std::atomic<std::uint64_t> cpu_ns_{0};
  std::atomic<std::uint64_t> child_wall_ns_{0};
  std::atomic<std::uint64_t> child_cpu_ns_{0};
};

// Point-in-time view of one node with the self/total split computed.
struct CostNodeSnapshot {
  std::string path;
  std::uint64_t count = 0;
  double total_wall_s = 0.0;
  double self_wall_s = 0.0;  // total − dynamically nested children, >= 0
  double total_cpu_s = 0.0;
  double self_cpu_s = 0.0;
};

struct CostTreeSnapshot {
  std::vector<CostNodeSnapshot> nodes;  // sorted by path (preorder walk)

  // Lookup by exact path; nullptr when absent.
  const CostNodeSnapshot* node(const std::string& path) const;
  // Sum of total_wall_s over `prefix` itself plus every node under
  // "prefix/..." that is NOT nested (by path) below another matched node —
  // i.e. the subtree's wall total without double-counting path children.
  double subtree_wall_s(const std::string& prefix) const;
  // Sum of self_wall_s over every node (the 100% a profile divides).
  double total_self_wall_s() const;

  // /cost.json body: {"nodes": [{path, count, total_wall_s, self_wall_s,
  // total_cpu_s, self_cpu_s}, ...]} sorted by path.
  std::string to_json() const;
};

class CostRegistry {
 public:
  CostRegistry() = default;
  CostRegistry(const CostRegistry&) = delete;
  CostRegistry& operator=(const CostRegistry&) = delete;

  // Get-or-create by path. Pointers remain valid for the registry's
  // lifetime; meant to be resolved once at component construction.
  CostCenter* center(const std::string& path);

  CostTreeSnapshot snapshot() const;

  // Zeroes every node, keeping registrations (and pointers) intact.
  void reset();

  // Mirrors the tree into `registry` as gauges — cost.<path>.total_s,
  // cost.<path>.self_s, cost.<path>.count with '/' rendered as '.' — so
  // the timeseries sampler retains cost history beside the runtime
  // metrics.
  void publish_gauges(MetricsRegistry& registry) const;

  // Process-wide tree the runtime instruments against.
  static CostRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CostCenter>> centers_;
};

// Adds a pre-measured span to `center` as if a CostScope had wrapped it:
// bumps the node and credits the calling thread's innermost open scope
// with child time.
void cost_add(CostCenter* center, double wall_s, double cpu_s,
              std::uint64_t count = 1);

// RAII phase timer. Construction reads the clocks and pushes itself as the
// thread's innermost scope; destruction pops, accumulates into the node
// and credits the parent scope's child time. kWallOnly skips the thread
// CPU clock (a syscall) for scopes inside hot kernels; their cpu
// contribution reads as 0 and the parent's cpu self-time is unaffected.
class CostScope {
 public:
  enum Mode { kWallAndCpu, kWallOnly };

  explicit CostScope(CostCenter* center, Mode mode = kWallAndCpu);
  ~CostScope();
  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

  // The calling thread's innermost open scope (nullptr outside any).
  static CostScope* current();

 private:
  friend void cost_add(CostCenter*, double, double, std::uint64_t);

  CostCenter* center_;
  CostScope* parent_;
  Mode mode_;
  std::chrono::steady_clock::time_point wall_begin_;
  double cpu_begin_s_ = 0.0;
  // Child time accrued while this scope was open (same thread, no atomics
  // needed until the flush in the destructor).
  double child_wall_s_ = 0.0;
  double child_cpu_s_ = 0.0;
};

}  // namespace sstd::obs
