#include "obs/slo.h"

#include <algorithm>

#include "util/log.h"

namespace sstd::obs {

SloTracker::SloTracker(MetricsRegistry* registry) {
  ins_.hits = registry->counter("slo.deadline_hits");
  ins_.misses = registry->counter("slo.deadline_misses");
  ins_.alerts = registry->counter("slo.alerts_fired");
  ins_.hit_ratio = registry->gauge("slo.deadline_hit_ratio");
  ins_.staleness_s = registry->histogram("stream.decision_staleness_s");
}

void SloTracker::register_job(std::uint32_t job, double deadline_s) {
  std::lock_guard<std::mutex> lock(mu_);
  jobs_[job].deadline_s = deadline_s;
}

void SloTracker::forget_job(std::uint32_t job) {
  std::lock_guard<std::mutex> lock(mu_);
  jobs_.erase(job);
}

void SloTracker::record_completion(std::uint32_t job, double elapsed_s) {
  // Alerts fire outside the lock: a callback may read the tracker back.
  std::vector<std::pair<std::function<void(const SloAlert&)>, SloAlert>>
      to_fire;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) return;
    const bool hit = elapsed_s <= it->second.deadline_s;

    if (hit) {
      ++it->second.stats.hits;
      ++total_.hits;
      ins_.hits->inc();
    } else {
      ++it->second.stats.misses;
      ++total_.misses;
      ins_.misses->inc();
    }
    ins_.hit_ratio->set(total_.hit_ratio());

    if (recent_capacity_ > 0) {
      recent_.push_back(hit);
      while (recent_.size() > recent_capacity_) recent_.pop_front();
    }

    for (RuleState& state : rules_) {
      const std::size_t window = std::min(recent_.size(), state.rule.window);
      if (window < state.rule.min_samples || window == 0) continue;
      std::uint64_t window_misses = 0;
      for (std::size_t i = recent_.size() - window; i < recent_.size(); ++i) {
        window_misses += recent_[i] ? 0 : 1;
      }
      const double miss_ratio =
          static_cast<double>(window_misses) / static_cast<double>(window);
      if (miss_ratio > state.rule.max_miss_ratio) {
        if (!state.firing) {
          state.firing = true;
          ++alerts_fired_;
          ins_.alerts->inc();
          SloAlert alert;
          alert.rule = state.rule.name;
          alert.miss_ratio = miss_ratio;
          alert.window_misses = window_misses;
          alert.window_hits = window - window_misses;
          to_fire.emplace_back(state.rule.on_fire, std::move(alert));
        }
      } else {
        state.firing = false;  // burn rate recovered: re-arm
      }
    }
  }

  for (auto& [callback, alert] : to_fire) {
    SSTD_LOG_WARN("slo",
                  "SLO burn: rule '%s' miss ratio %.2f over last %llu "
                  "completions exceeds threshold",
                  alert.rule.c_str(), alert.miss_ratio,
                  static_cast<unsigned long long>(alert.window_hits +
                                                  alert.window_misses));
    if (callback) callback(alert);
  }
}

void SloTracker::record_decision_staleness(double staleness_s) {
  ins_.staleness_s->observe(staleness_s);
}

void SloTracker::add_alert_rule(SloAlertRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  recent_capacity_ = std::max(recent_capacity_, rule.window);
  rules_.push_back(RuleState{std::move(rule), false});
}

SloTracker::Stats SloTracker::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

SloTracker::Stats SloTracker::job_stats(std::uint32_t job) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job);
  return it != jobs_.end() ? it->second.stats : Stats{};
}

std::uint64_t SloTracker::alerts_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return alerts_fired_;
}

}  // namespace sstd::obs
