// Metrics registry for the runtime (ISSUE 2, DESIGN.md §5b): named
// counters, gauges and fixed-bucket histograms behind a lock-light API.
//
// Hot path (inc/observe/set) is a handful of relaxed atomic operations on
// a pre-resolved instrument pointer — no locks, no allocation, safe from
// worker threads. Registration (name → instrument lookup) takes the
// registry mutex and is meant to happen once, at construction time of the
// instrumented component; instrument pointers stay valid for the registry's
// lifetime (reset() zeroes values but never invalidates pointers).
//
// Metric names use a dotted namespace — `wq.*` (Work Queue runtime),
// `sim.*` (discrete-event cluster), `dtm.*` (controller), `stream.*`
// (streaming/distributed engine), `log.*` (log bridge), `bench.*`
// (benches). Exporters sanitize the dots where the wire format demands it
// (Prometheus: `wq.tasks_retried` → `wq_tasks_retried`).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sstd::obs {

// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value (pool size, backlog, signal level).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// An OpenMetrics-style exemplar: the last traced observation that landed
// in a bucket, so an aggregate latency bucket links back to one concrete
// causal chain (/trace.json?trace_id=…) that exhibited it (ISSUE 8).
struct HistogramExemplar {
  double value = 0.0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

// Fixed-bucket histogram: cumulative-style export, atomic per-bucket
// counts. Bucket i counts observations <= bounds[i]; one implicit
// overflow bucket catches the rest.
class Histogram {
 public:
  // `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);
  // observe() plus per-bucket exemplar capture (last traced observation
  // wins). Takes a short mutex; call only on the sampled slice of
  // traffic, not the hot path.
  void observe_exemplar(double value, std::uint64_t trace_hi,
                        std::uint64_t trace_lo, std::uint64_t span_id);

  const std::vector<double>& bounds() const { return bounds_; }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }
  bool has_exemplars() const {
    return has_exemplars_.load(std::memory_order_acquire);
  }
  // Per-bucket exemplars (bounds + overflow); invalid entries for buckets
  // no traced observation ever hit. Empty when has_exemplars() is false.
  std::vector<HistogramExemplar> exemplars() const;
  void reset();

  // Default bucket ladder for second-scale latencies (1 ms … 30 s).
  static std::vector<double> default_latency_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<bool> has_exemplars_{false};
  mutable std::mutex exemplar_mu_;
  std::vector<HistogramExemplar> exemplars_;  // lazily sized, bounds + overflow
};

// Point-in-time copy of one histogram, with quantile estimation by linear
// interpolation inside the containing bucket (the usual Prometheus
// histogram_quantile approximation).
struct HistogramSnapshot {
  std::vector<double> bounds;          // upper bounds, ascending
  std::vector<std::uint64_t> buckets;  // per-bucket counts, + overflow last
  std::vector<HistogramExemplar> exemplars;  // empty unless any were captured
  std::uint64_t count = 0;
  double sum = 0.0;

  // Returns NaN when the histogram is empty (count == 0): there is no
  // q-th observation, and 0 would masquerade as a real latency. JSON
  // exporters render the NaN as null.
  double quantile(double q) const;
  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

// Point-in-time copy of every instrument, sorted by name (deterministic
// exporter output).
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  // Lookup helpers for tests/benches; 0 / nullptr when absent.
  std::uint64_t counter_value(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. Pointers remain valid for the registry's
  // lifetime. Requesting an existing name with a different instrument kind
  // throws std::logic_error (a name means one thing).
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       std::vector<double> upper_bounds = {});

  MetricsSnapshot snapshot() const;

  // Zeroes every instrument, keeping registrations (and pointers) intact.
  void reset();

  // Process-wide default registry the runtime instruments against.
  static MetricsRegistry& global();

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace sstd::obs
