// Dependency-free in-process sampling CPU profiler (ISSUE 10, DESIGN.md
// §5e). A POSIX interval timer (`setitimer(ITIMER_PROF)`) delivers SIGPROF
// to whichever thread is burning CPU; the async-signal handler captures a
// `backtrace()` into the interrupted thread's lock-free single-producer
// sample ring and returns. Everything expensive — draining rings,
// `dladdr` symbolization, demangling, aggregation — happens later in
// normal execution context at export time, producing flamegraph-
// compatible collapsed/folded stacks ("root;frame;leaf count" lines).
//
// Signal-safety rules (see DESIGN.md §5e for the full argument):
//   - The handler touches only the thread-local ring pointer, plain
//     atomics, and `backtrace()`. No locks, no allocation, no stdio.
//   - `backtrace()` is primed once in `start()` (its first call may
//     dlopen/allocate inside libgcc); afterwards the glibc ≥2.35 unwind
//     path resolves frames via the lock-free `_dl_find_object`.
//   - Rings are allocated in normal context only: by `start()` for
//     already-registered threads (before the timer is armed) and by
//     `register_current_thread()` for threads that appear while running.
//   - Samples on threads that never registered are counted, not taken
//     (`obs.prof.dropped_samples` covers both unregistered-thread and
//     ring-full drops).
//
// Under sanitizer builds (SSTD_SANITIZE != "" ⇒ -DSSTD_PROF_DISABLED) the
// profiler still compiles but `supported()` is false and `start()`
// refuses: tsan/asan intercept signal delivery and unwinding in ways that
// make in-handler backtraces unsafe, and the labeled test suites assert
// the disabled behavior instead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sstd::obs {

class MetricsRegistry;

struct CpuProfilerConfig {
  // Sampling frequency. Prime by default so the timer does not phase-lock
  // with periodic work (intervals, scrape loops).
  int hz = 97;
  // Frames captured per sample (deeper frames are truncated).
  int max_depth = 40;
  // Per-thread ring capacity in samples. The collector drains every ~250
  // ms while a window is open, so this only needs to cover a short burst.
  std::size_t ring_slots = 1024;
};

namespace prof_internal {

constexpr int kMaxDepthCap = 40;

struct RawSample {
  std::uint32_t depth = 0;
  void* pc[kMaxDepthCap] = {};
};

// Single-producer (the owning thread's signal handler) / single-consumer
// (the collector holding the registry lock) ring. head is written by the
// producer, tail by the consumer; both only ever advance. The slot buffer
// is published through an acquire/release atomic so `allocate()` (normal
// context, possibly another thread) can never race the handler mid-resize:
// the handler either sees nullptr (drop) or a fully constructed buffer.
struct SampleRing {
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<RawSample*> buf{nullptr};
  std::atomic<std::size_t> capacity{0};
  std::unique_ptr<RawSample[]> storage;  // owns *buf; set exactly once

  // Normal context only; idempotent (a ring never shrinks or moves).
  void allocate(std::size_t slots);
  // Producer side; async-signal-safe. Returns false (and bumps dropped)
  // when full or unallocated.
  bool try_push(void* const* frames, int depth);
  // Consumer side: appends all pending samples to `out`.
  void drain(std::vector<RawSample>& out);
};

}  // namespace prof_internal

class CpuProfiler {
 public:
  // False when compiled with SSTD_PROF_DISABLED (sanitizer builds) or on
  // platforms without setitimer/backtrace.
  static bool supported();

  // Makes the calling thread sampleable. Idempotent and cheap after the
  // first call; safe (and useful) to call before or after start(). Worker
  // loops call this at entry.
  static void register_current_thread();

  // Arms SIGPROF sampling process-wide. Returns false (with *error set
  // when non-null) if unsupported or already running.
  bool start(const CpuProfilerConfig& config = {}, std::string* error = nullptr);
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Drains every ring, symbolizes, and returns folded stacks sorted by
  // descending count: "frame;frame;leaf N\n" per line, root first.
  // Consumed samples are gone; call once per window.
  std::string collect_folded();

  // One-shot window used by /profile/cpu and --profile smoke paths:
  // start (or piggyback on an already-armed profiler), sample for
  // `seconds` while draining every ~250 ms, then fold. On failure returns
  // "" with *error set.
  std::string profile_for(double seconds, const CpuProfilerConfig& config,
                          std::string* error = nullptr);

  std::uint64_t samples_captured() const;
  // Ring-full drops + samples that landed on never-registered threads.
  std::uint64_t samples_dropped() const;

  // Publishes obs.prof.samples / obs.prof.dropped_samples counters-as-
  // gauges into `registry` (gauges: the profiler may be reset per window).
  void publish_metrics(MetricsRegistry& registry) const;

  // Process-wide instance; SIGPROF has process-global delivery so there
  // is exactly one.
  static CpuProfiler& global();

  CpuProfiler() = default;
  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

 private:
  struct Accumulation;

  void drain_all_into(Accumulation& acc);
  static std::string symbolize(void* pc);

  std::atomic<bool> running_{false};
  CpuProfilerConfig config_;
  mutable std::mutex collect_mu_;
  std::unique_ptr<Accumulation> pending_;  // drained-but-unfolded samples
};

}  // namespace sstd::obs
