// Telemetry handle threaded through the runtime: which metrics registry
// and trace recorder an instrumented component reports into. Defaults to
// the process-wide globals; tests and benches swap in private instances
// to make assertions without cross-test interference.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sstd::obs {

struct Telemetry {
  MetricsRegistry* metrics = &MetricsRegistry::global();
  TraceRecorder* tracer = &TraceRecorder::global();
};

}  // namespace sstd::obs
