#include "obs/trace_context.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>

namespace sstd::obs {

namespace {

// splitmix64: a full-period mix of a 64-bit counter — every output is
// distinct for distinct inputs, so ids never collide within a process.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t default_seed() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(now.count()) ^
         (static_cast<std::uint64_t>(::getpid()) << 32);
}

std::atomic<std::uint64_t>& id_counter() {
  static std::atomic<std::uint64_t> counter{splitmix64(default_seed())};
  return counter;
}

std::uint64_t next_raw() {
  return id_counter().fetch_add(1, std::memory_order_relaxed);
}

// A minted id of zero would read as "no trace"; skip it.
std::uint64_t next_nonzero_id() {
  std::uint64_t id;
  do {
    id = splitmix64(next_raw());
  } while (id == 0);
  return id;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parse_hex_u64(std::string_view hex, std::uint64_t* out) {
  if (hex.empty() || hex.size() > 16) return false;
  std::uint64_t value = 0;
  for (const char c : hex) {
    const int digit = hex_digit(c);
    if (digit < 0) return false;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  *out = value;
  return true;
}

thread_local TraceContext g_current;

}  // namespace

TraceContext TraceContext::child() const {
  TraceContext out = *this;
  out.span_id = mint_span_id();
  return out;
}

std::string TraceContext::traceparent() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "00-%016llx%016llx-%016llx-%02x",
                static_cast<unsigned long long>(trace_hi),
                static_cast<unsigned long long>(trace_lo),
                static_cast<unsigned long long>(span_id), sampled ? 1 : 0);
  return buffer;
}

bool parse_traceparent(std::string_view header, TraceContext* out) {
  // "00-" + 32 + "-" + 16 + "-" + 2 = 55 characters exactly.
  if (header.size() != 55) return false;
  if (header.substr(0, 3) != "00-" || header[35] != '-' || header[52] != '-') {
    return false;
  }
  TraceContext parsed;
  std::uint64_t flags = 0;
  if (!parse_hex_u64(header.substr(3, 16), &parsed.trace_hi) ||
      !parse_hex_u64(header.substr(19, 16), &parsed.trace_lo) ||
      !parse_hex_u64(header.substr(36, 16), &parsed.span_id) ||
      !parse_hex_u64(header.substr(53, 2), &flags)) {
    return false;
  }
  if (!parsed.valid() || parsed.span_id == 0) return false;
  parsed.sampled = (flags & 1) != 0;
  *out = parsed;
  return true;
}

std::string trace_id_hex(std::uint64_t hi, std::uint64_t lo) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buffer;
}

std::string span_id_hex(std::uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

bool parse_trace_id_hex(std::string_view hex, std::uint64_t* hi,
                        std::uint64_t* lo) {
  if (hex.empty() || hex.size() > 32) return false;
  if (hex.size() <= 16) {
    *hi = 0;
    return parse_hex_u64(hex, lo);
  }
  const std::size_t lo_digits = 16;
  const std::size_t hi_digits = hex.size() - lo_digits;
  return parse_hex_u64(hex.substr(0, hi_digits), hi) &&
         parse_hex_u64(hex.substr(hi_digits), lo);
}

TraceContext mint_trace(bool sampled) {
  TraceContext out;
  out.trace_hi = next_nonzero_id();
  out.trace_lo = next_nonzero_id();
  out.span_id = next_nonzero_id();
  out.sampled = sampled;
  return out;
}

std::uint64_t mint_span_id() { return next_nonzero_id(); }

void seed_trace_ids(std::uint64_t seed) {
  id_counter().store(splitmix64(seed), std::memory_order_relaxed);
}

const TraceContext& current_trace_context() { return g_current; }

void set_current_trace_context(const TraceContext& context) {
  g_current = context;
}

void clear_current_trace_context() { g_current = TraceContext{}; }

TraceScope::TraceScope(const TraceContext& context) : previous_(g_current) {
  g_current = context;
}

TraceScope::~TraceScope() { g_current = previous_; }

}  // namespace sstd::obs
