// Bridges util/log.h into the metrics registry: every emitted message
// increments `log.messages_total`, and WARN/ERROR additionally increment
// `log.warn_total` / `log.error_total`. Error counters are the cheapest
// health signal a dashboard can scrape, and tests use them to assert "this
// chaos run warned at least once" without scraping process output.
#pragma once

#include "obs/metrics.h"

namespace sstd::obs {

// Installs the log observer (util/log.h set_log_observer); counters are
// registered in `registry` (default: the global registry). Replaces any
// previously installed observer.
void install_log_metrics_bridge(
    MetricsRegistry* registry = &MetricsRegistry::global());

// Removes the observer again (tests that want a clean slate).
void uninstall_log_metrics_bridge();

}  // namespace sstd::obs
