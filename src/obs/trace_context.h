// Causal trace context (ISSUE 8, DESIGN.md §5d): the W3C-traceparent-shaped
// identity that follows one sampled report from ingest through every Work
// Queue attempt (retries, speculative duplicates, crash-kill recovery
// replay) to the decision it produced.
//
//   * 128-bit trace id — one causal chain, minted at ingest;
//   * 64-bit span id — one operation inside the chain (the *current* span;
//     children record it as their parent);
//   * sampled flag — whether recorders should keep spans for this chain.
//
// The context is a trivially-copyable value type and renders to/from the
// W3C `traceparent` header ("00-<32 hex trace>-<16 hex span>-<2 hex
// flags>"), so it is wire-serializable as-is — prerequisite work for the
// socket-based multi-process Work Queue (ROADMAP), where the context rides
// the task frame between master and worker processes.
//
// Propagation inside one process is Dapper-style via a thread-local
// current context: the Work Queue sets it around each attempt's payload,
// so anything the payload does (shard refits, recovery replay, decision
// flips) can parent its spans correctly without plumbing the context
// through every call signature. `TraceScope` is the RAII guard.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sstd::obs {

struct TraceContext {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  bool sampled = false;

  // A context with an all-zero trace id is "no trace" (W3C forbids zero
  // ids on the wire for the same reason).
  bool valid() const { return (trace_hi | trace_lo) != 0; }

  // Same trace, fresh span id; the child's parent is this->span_id (the
  // caller records that edge on the span it emits).
  TraceContext child() const;

  // "00-<32 hex trace id>-<16 hex span id>-<01|00>".
  std::string traceparent() const;

  bool operator==(const TraceContext&) const = default;
};

// Parses a traceparent header; returns false (out untouched) on anything
// malformed: wrong field sizes, non-hex digits, unsupported version, or
// the all-zero trace/span ids the spec forbids.
bool parse_traceparent(std::string_view header, TraceContext* out);

// 32-hex-digit trace id / 16-hex-digit span id renderings (no dashes),
// the forms /trace.json?trace_id=… accepts.
std::string trace_id_hex(std::uint64_t hi, std::uint64_t lo);
std::string span_id_hex(std::uint64_t id);
// Parses a 1..32-digit hex trace id (shorter forms are zero-extended, so
// tests can use small readable ids). False on empty/overlong/non-hex.
bool parse_trace_id_hex(std::string_view hex, std::uint64_t* hi,
                        std::uint64_t* lo);

// Mints a fresh root context / span id. Thread-safe and allocation-free:
// ids come from a splitmix64 walk over an atomic counter, seeded once per
// process (reseedable for deterministic tests). Ids are unique within a
// process run, which is all the single-node runtime needs; the seed mixes
// in the process id so two nodes sharing a collector are unlikely to
// collide.
TraceContext mint_trace(bool sampled = true);
std::uint64_t mint_span_id();

// Reseeds the id generator (tests only: makes minted ids reproducible).
void seed_trace_ids(std::uint64_t seed);

// Thread-local current context (Dapper-style in-process propagation).
// Invalid by default; set for the duration of a Work Queue attempt's
// payload and read by the streaming engine's refit/decision/recovery
// instrumentation.
const TraceContext& current_trace_context();
void set_current_trace_context(const TraceContext& context);
void clear_current_trace_context();

// RAII guard: installs `context` on construction, restores the previous
// context on destruction (scopes nest).
class TraceScope {
 public:
  explicit TraceScope(const TraceContext& context);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext previous_;
};

}  // namespace sstd::obs
