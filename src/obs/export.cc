#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "obs/trace_context.h"

namespace sstd::obs {
namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// namespaces map onto underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string format_double(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string format_u64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

// JSON numbers admit neither NaN nor Inf; a "no data" quantile (empty
// histogram → NaN, see HistogramSnapshot::quantile) becomes null.
std::string json_number(double value) {
  return std::isfinite(value) ? format_double(value) : "null";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string base = prometheus_name(name);
    out += "# TYPE " + base + " counter\n";
    out += base + " " + format_u64(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string base = prometheus_name(name);
    out += "# TYPE " + base + " gauge\n";
    out += base + " " + format_double(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string base = prometheus_name(name);
    out += "# TYPE " + base + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.buckets[i];
      out += base + "_bucket{le=\"" + format_double(hist.bounds[i]) + "\"} " +
             format_u64(cumulative) + "\n";
    }
    out += base + "_bucket{le=\"+Inf\"} " + format_u64(hist.count) + "\n";
    out += base + "_sum " + format_double(hist.sum) + "\n";
    out += base + "_count " + format_u64(hist.count) + "\n";
    // OpenMetrics-style exemplars: "# {trace_id=…} value" after the
    // bucket block, one line per bucket that captured one. Comment
    // syntax keeps plain-Prometheus scrapers happy.
    if (!hist.exemplars.empty()) {
      for (std::size_t i = 0; i < hist.exemplars.size(); ++i) {
        const HistogramExemplar& ex = hist.exemplars[i];
        if (!ex.valid()) continue;
        const std::string le = i < hist.bounds.size()
                                   ? format_double(hist.bounds[i])
                                   : "+Inf";
        out += "# " + base + "_bucket{le=\"" + le + "\"} exemplar {trace_id=\"" +
               trace_id_hex(ex.trace_hi, ex.trace_lo) + "\",span_id=\"" +
               span_id_hex(ex.span_id) + "\"} " + format_double(ex.value) +
               "\n";
      }
    }
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + format_u64(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + json_number(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) +
           "\": {\"count\": " + format_u64(hist.count) +
           ", \"sum\": " + format_double(hist.sum) +
           ", \"mean\": " + format_double(hist.mean()) +
           ", \"p50\": " + json_number(hist.quantile(0.5)) +
           ", \"p95\": " + json_number(hist.quantile(0.95)) +
           ", \"p99\": " + json_number(hist.quantile(0.99));
    // Exemplars only when any bucket captured one, so histograms without
    // tracing keep their pre-ISSUE-8 shape byte for byte.
    bool any_exemplar = false;
    for (const HistogramExemplar& ex : hist.exemplars) {
      if (ex.valid()) { any_exemplar = true; break; }
    }
    if (any_exemplar) {
      out += ", \"exemplars\": [";
      bool first_ex = true;
      for (std::size_t i = 0; i < hist.exemplars.size(); ++i) {
        const HistogramExemplar& ex = hist.exemplars[i];
        if (!ex.valid()) continue;
        if (!first_ex) out += ", ";
        first_ex = false;
        const std::string le = i < hist.bounds.size()
                                   ? format_double(hist.bounds[i])
                                   : "null";
        out += "{\"le\": " + le + ", \"value\": " + format_double(ex.value) +
               ", \"trace_id\": \"" + trace_id_hex(ex.trace_hi, ex.trace_lo) +
               "\", \"span_id\": \"" + span_id_hex(ex.span_id) + "\"}";
      }
      out += "]";
    }
    out += "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_chrome_trace(const std::vector<TraceSpan>& spans) {
  // Complete events: ts/dur in microseconds. pid 1 is the runtime; tid is
  // the worker id, so about:tracing renders one row per worker.
  //
  // Traced spans additionally carry their trace/span/parent ids and
  // attributes in args, and each parent→child edge whose both ends are in
  // `spans` becomes a flow-event pair ("ph":"s" at the parent, "ph":"f"
  // with bp:"e" at the child) so Perfetto draws arrows across worker
  // rows. Untraced spans render exactly as before ISSUE 8.
  std::unordered_map<std::uint64_t, std::size_t> by_span_id;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].traced() && spans[i].span_id != 0) {
      by_span_id.emplace(spans[i].span_id, i);
    }
  }
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) out += ",";
    first = false;
    const double ts_us = span.begin_s * 1e6;
    const double dur_us = (span.end_s - span.begin_s) * 1e6;
    out += "\n{\"name\":\"";
    out += json_escape(span_phase_name(span.phase));
    out += "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":";
    out += format_double(ts_us);
    out += ",\"dur\":";
    out += format_double(dur_us < 0.0 ? 0.0 : dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += format_u64(span.worker);
    out += ",\"args\":{\"task\":";
    out += format_u64(span.task);
    out += ",\"job\":";
    out += format_u64(span.job);
    out += ",\"attempt\":";
    out += format_u64(static_cast<std::uint64_t>(span.attempt));
    out += ",\"outcome\":\"";
    out += json_escape(span_outcome_name(span.outcome));
    out += "\",\"speculative\":";
    out += span.speculative ? "true" : "false";
    if (span.traced()) {
      out += ",\"trace\":\"";
      out += trace_id_hex(span.trace_hi, span.trace_lo);
      out += "\",\"span\":\"";
      out += span_id_hex(span.span_id);
      out += "\",\"parent\":\"";
      out += span_id_hex(span.parent_span);
      out += "\"";
      for (const auto& [key, value] : span.attrs) {
        out += ",\"";
        out += json_escape(key);
        out += "\":\"";
        out += json_escape(value);
        out += "\"";
      }
    }
    out += "}}";
  }
  // Flow events, keyed by the child's span id. The start anchors at the
  // parent's end (or begin when zero-width), the finish at the child's
  // begin — the arrow reads "parent handed off to child".
  for (const auto& span : spans) {
    if (!span.traced() || span.parent_span == 0) continue;
    const auto parent_it = by_span_id.find(span.parent_span);
    if (parent_it == by_span_id.end()) continue;
    const TraceSpan& parent = spans[parent_it->second];
    const double start_ts_us =
        (parent.end_s > parent.begin_s ? parent.end_s : parent.begin_s) * 1e6;
    out += ",\n{\"name\":\"link\",\"cat\":\"trace\",\"ph\":\"s\",\"id\":";
    out += format_u64(span.span_id);
    out += ",\"ts\":";
    out += format_double(start_ts_us);
    out += ",\"pid\":1,\"tid\":";
    out += format_u64(parent.worker);
    out += "},\n{\"name\":\"link\",\"cat\":\"trace\",\"ph\":\"f\",\"bp\":\"e\",\"id\":";
    out += format_u64(span.span_id);
    out += ",\"ts\":";
    out += format_double(span.begin_s * 1e6);
    out += ",\"pid\":1,\"tid\":";
    out += format_u64(span.worker);
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string to_trace_json(const std::vector<TraceSpan>& spans) {
  std::string out = "{\"spans\":[";
  bool first = true;
  for (const auto& span : spans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"trace_id\":\"" + trace_id_hex(span.trace_hi, span.trace_lo) +
           "\",\"span_id\":\"" + span_id_hex(span.span_id) +
           "\",\"parent_span_id\":\"" + span_id_hex(span.parent_span) +
           "\",\"phase\":\"" + span_phase_name(span.phase) +
           "\",\"outcome\":\"" + span_outcome_name(span.outcome) +
           "\",\"task\":" + format_u64(span.task) +
           ",\"job\":" + format_u64(span.job) +
           ",\"worker\":" + format_u64(span.worker) +
           ",\"attempt\":" + format_u64(static_cast<std::uint64_t>(span.attempt)) +
           ",\"speculative\":" + (span.speculative ? "true" : "false") +
           ",\"begin_s\":" + format_double(span.begin_s) +
           ",\"end_s\":" + format_double(span.end_s) + ",\"attrs\":{";
    bool first_attr = true;
    for (const auto& [key, value] : span.attrs) {
      if (!first_attr) out += ",";
      first_attr = false;
      out += "\"" + json_escape(key) + "\":\"" + json_escape(value) + "\"";
    }
    out += "}}";
  }
  out += first ? "],\"count\":" : "\n],\"count\":";
  out += format_u64(spans.size());
  out += "}\n";
  return out;
}

std::string to_claims_json(const std::vector<DecisionRecord>& records) {
  std::string out = "{\"decisions\":[";
  bool first = true;
  for (const auto& record : records) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  {\"claim\":\"" + json_escape(record.claim) +
           "\",\"interval\":" + format_u64(record.interval) +
           ",\"old_estimate\":" +
           std::to_string(record.old_estimate) +
           ",\"new_estimate\":" + std::to_string(record.new_estimate) +
           ",\"posterior\":" + format_double(record.posterior) +
           ",\"shard\":" + format_u64(record.shard) +
           ",\"refit_seq\":" + format_u64(record.refit_seq) +
           ",\"wal_lsn\":" + format_u64(record.wal_lsn) +
           ",\"wall_s\":" + format_double(record.wall_s);
    if (record.traced()) {
      out += ",\"trace_id\":\"" + trace_id_hex(record.trace_hi, record.trace_lo) +
             "\",\"span_id\":\"" + span_id_hex(record.span_id) + "\"";
    }
    out += "}";
  }
  out += first ? "],\"count\":" : "\n],\"count\":";
  out += format_u64(records.size());
  out += "}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << content;
  return static_cast<bool>(file);
}

}  // namespace sstd::obs
