#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace sstd::obs {
namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted
// namespaces map onto underscores.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string format_double(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string format_u64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  return buffer;
}

// JSON numbers admit neither NaN nor Inf; a "no data" quantile (empty
// histogram → NaN, see HistogramSnapshot::quantile) becomes null.
std::string json_number(double value) {
  return std::isfinite(value) ? format_double(value) : "null";
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string base = prometheus_name(name);
    out += "# TYPE " + base + " counter\n";
    out += base + " " + format_u64(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string base = prometheus_name(name);
    out += "# TYPE " + base + " gauge\n";
    out += base + " " + format_double(value) + "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string base = prometheus_name(name);
    out += "# TYPE " + base + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bounds.size(); ++i) {
      cumulative += hist.buckets[i];
      out += base + "_bucket{le=\"" + format_double(hist.bounds[i]) + "\"} " +
             format_u64(cumulative) + "\n";
    }
    out += base + "_bucket{le=\"+Inf\"} " + format_u64(hist.count) + "\n";
    out += base + "_sum " + format_double(hist.sum) + "\n";
    out += base + "_count " + format_u64(hist.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + format_u64(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) + "\": " + json_number(value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    out += "    \"" + json_escape(name) +
           "\": {\"count\": " + format_u64(hist.count) +
           ", \"sum\": " + format_double(hist.sum) +
           ", \"mean\": " + format_double(hist.mean()) +
           ", \"p50\": " + json_number(hist.quantile(0.5)) +
           ", \"p95\": " + json_number(hist.quantile(0.95)) +
           ", \"p99\": " + json_number(hist.quantile(0.99)) + "}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string to_chrome_trace(const std::vector<TraceSpan>& spans) {
  // Complete events: ts/dur in microseconds. pid 1 is the runtime; tid is
  // the worker id, so about:tracing renders one row per worker.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& span : spans) {
    if (!first) out += ",";
    first = false;
    const double ts_us = span.begin_s * 1e6;
    const double dur_us = (span.end_s - span.begin_s) * 1e6;
    out += "\n{\"name\":\"";
    out += json_escape(span_phase_name(span.phase));
    out += "\",\"cat\":\"task\",\"ph\":\"X\",\"ts\":";
    out += format_double(ts_us);
    out += ",\"dur\":";
    out += format_double(dur_us < 0.0 ? 0.0 : dur_us);
    out += ",\"pid\":1,\"tid\":";
    out += format_u64(span.worker);
    out += ",\"args\":{\"task\":";
    out += format_u64(span.task);
    out += ",\"job\":";
    out += format_u64(span.job);
    out += ",\"attempt\":";
    out += format_u64(static_cast<std::uint64_t>(span.attempt));
    out += ",\"outcome\":\"";
    out += json_escape(span_outcome_name(span.outcome));
    out += "\",\"speculative\":";
    out += span.speculative ? "true" : "false";
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << content;
  return static_cast<bool>(file);
}

}  // namespace sstd::obs
