#include "obs/soak.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/proc_stats.h"

namespace sstd::obs {
namespace {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MiB",
                static_cast<double>(bytes) / (1024.0 * 1024.0));
  return buf;
}

// Mean drops-per-report over samples [begin, end) of the series, using
// deltas between consecutive samples so an early burst (e.g. warmup churn)
// does not haunt every later window.
double mean_drop_rate(const std::vector<SoakSample>& s, std::size_t begin,
                      std::size_t end,
                      std::uint64_t SoakSample::*drop_field) {
  double drops = 0.0;
  double reports = 0.0;
  for (std::size_t i = std::max<std::size_t>(begin, 1); i < end; ++i) {
    drops += static_cast<double>(s[i].*drop_field - s[i - 1].*drop_field);
    reports += static_cast<double>(s[i].reports_ingested -
                                   s[i - 1].reports_ingested);
  }
  return reports > 0.0 ? drops / reports : 0.0;
}

void check_drop_growth(const std::vector<SoakSample>& samples,
                       const SoakLimits& limits, std::size_t first,
                       std::uint64_t SoakSample::*drop_field,
                       const char* ring_name,
                       std::vector<SoakViolation>* out) {
  const std::size_t n = samples.size();
  const std::size_t span = n - first;
  if (span < 6) return;  // too short to call a trend
  const std::size_t third = span / 3;
  // Compare the middle third against the newest third: a healthy run has a
  // flat (or falling) drops-per-report curve once warm.
  const double older = mean_drop_rate(samples, first + third,
                                      first + 2 * third, drop_field);
  const double newer = mean_drop_rate(samples, n - third, n, drop_field);
  // Rates below ~1 drop per 10k reports are noise, not a trend.
  constexpr double kEpsilon = 1e-4;
  if (newer > kEpsilon && newer > older * limits.drop_rate_growth_factor) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%s drops/report grew %.2e -> %.2e (factor limit %.1f)",
                  ring_name, older, newer, limits.drop_rate_growth_factor);
    out->push_back({"drop-rate-growth", buf});
  }
}

}  // namespace

SoakMonitor::SoakMonitor(SoakLimits limits, MetricsRegistry* registry)
    : limits_(limits), registry_(registry) {}

const SoakSample& SoakMonitor::sample() {
  const ProcSelfStats proc = update_proc_gauges(*registry_);
  const MetricsSnapshot snap = registry_->snapshot();

  SoakSample s;
  s.wall_s = watch_.elapsed_seconds();
  s.rss_bytes = proc.rss_bytes;
  s.reports_ingested = snap.counter_value("stream.reports_ingested");
  s.trace_dropped_spans = snap.counter_value("obs.trace.dropped_spans");
  s.provenance_dropped_records =
      snap.counter_value("obs.provenance.dropped_records");
  if (const HistogramSnapshot* h =
          snap.histogram("stream.decision_staleness_s")) {
    s.staleness_p50 = h->quantile(0.5);
    s.staleness_p95 = h->quantile(0.95);
    s.staleness_p99 = h->quantile(0.99);
  }
  for (const auto& [name, value] : snap.gauges) {
    if (name == "stream.active_claims") s.active_claims = value;
  }
  samples_.push_back(s);
  return samples_.back();
}

SoakReport SoakMonitor::evaluate_series(const std::vector<SoakSample>& samples,
                                        const SoakLimits& limits) {
  SoakReport report;
  if (samples.empty()) {
    report.violations.push_back(
        {"no-samples", "soak monitor collected no samples"});
    return report;
  }

  const std::size_t first =
      std::min(limits.warmup_samples, samples.size() - 1);
  const SoakSample& last = samples.back();
  report.staleness_p95 = last.staleness_p95;
  report.staleness_p99 = last.staleness_p99;
  report.trace_dropped_spans = last.trace_dropped_spans;
  report.provenance_dropped_records = last.provenance_dropped_records;

  // --- bounded-rss -------------------------------------------------------
  report.baseline_rss_bytes = samples[first].rss_bytes;
  for (std::size_t i = first; i < samples.size(); ++i) {
    report.peak_rss_bytes = std::max(report.peak_rss_bytes,
                                     samples[i].rss_bytes);
  }
  if (report.baseline_rss_bytes > 0) {
    const auto ratio_cap = static_cast<std::uint64_t>(
        static_cast<double>(report.baseline_rss_bytes) *
        (1.0 + limits.max_rss_growth_ratio));
    const std::uint64_t slack_cap =
        report.baseline_rss_bytes + limits.rss_slack_bytes;
    if (report.peak_rss_bytes > ratio_cap &&
        report.peak_rss_bytes > slack_cap) {
      report.violations.push_back(
          {"bounded-rss",
           "post-warmup RSS grew from " +
               format_bytes(report.baseline_rss_bytes) + " to " +
               format_bytes(report.peak_rss_bytes) + " (cap " +
               format_bytes(std::max(ratio_cap, slack_cap)) + ")"});
    }
  }
  if (limits.max_rss_bytes > 0 &&
      report.peak_rss_bytes > limits.max_rss_bytes) {
    report.violations.push_back(
        {"bounded-rss", "peak RSS " + format_bytes(report.peak_rss_bytes) +
                            " exceeds absolute cap " +
                            format_bytes(limits.max_rss_bytes)});
  }

  // --- staleness-slo -----------------------------------------------------
  // Judged on the final cumulative histogram: with millions of decisions,
  // the end-of-run quantile is the run's quantile.
  double q = last.staleness_p95;
  if (limits.staleness_quantile >= 0.99) {
    q = last.staleness_p99;
  } else if (limits.staleness_quantile <= 0.5) {
    q = last.staleness_p50;
  }
  if (std::isnan(q)) {
    if (last.reports_ingested > 0) {
      report.violations.push_back(
          {"staleness-slo",
           "no decision staleness observations despite ingested reports"});
    }
  } else if (q > limits.staleness_slo_s) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "p%02d staleness %.3fs exceeds SLO %.3fs",
                  static_cast<int>(limits.staleness_quantile * 100.0), q,
                  limits.staleness_slo_s);
    report.violations.push_back({"staleness-slo", buf});
  }

  // --- drop-rate-growth --------------------------------------------------
  check_drop_growth(samples, limits, first,
                    &SoakSample::trace_dropped_spans, "trace-ring",
                    &report.violations);
  check_drop_growth(samples, limits, first,
                    &SoakSample::provenance_dropped_records,
                    "provenance-ring", &report.violations);

  return report;
}

}  // namespace sstd::obs
