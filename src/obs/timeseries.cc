#include "obs/timeseries.h"

#include <chrono>
#include <cstdio>

#include "obs/cost.h"
#include "obs/export.h"
#include "obs/proc_stats.h"

namespace sstd::obs {

namespace {

std::string csv_num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

std::string csv_u64(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  return buffer;
}

// Rate between two retained samples; 0 on zero-dt or counter reset.
double rate_between(const TimeSeriesPoint& prev, const TimeSeriesPoint& cur,
                    const std::string& name) {
  const double dt = cur.t_s - prev.t_s;
  const std::uint64_t before = prev.metrics.counter_value(name);
  const std::uint64_t after = cur.metrics.counter_value(name);
  if (dt <= 0.0 || after < before) return 0.0;
  return static_cast<double>(after - before) / dt;
}

}  // namespace

TimeSeriesSampler::TimeSeriesSampler(MetricsRegistry* registry,
                                     TimeSeriesConfig config)
    : registry_(registry), config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.interval_s <= 0.0) config_.interval_s = 1.0;
  ring_.reserve(config_.capacity);
}

TimeSeriesSampler::~TimeSeriesSampler() { stop(); }

void TimeSeriesSampler::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_running_) return;
  stop_requested_ = false;
  thread_running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void TimeSeriesSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  thread_running_ = false;
}

bool TimeSeriesSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_running_;
}

void TimeSeriesSampler::run_loop() {
  const auto interval = std::chrono::duration<double>(config_.interval_s);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    lock.unlock();
    sample_now();
    lock.lock();
    cv_.wait_for(lock, interval, [this] { return stop_requested_; });
  }
}

void TimeSeriesSampler::sample_now() { sample_at(clock_.elapsed_seconds()); }

void TimeSeriesSampler::sample_at(double t_s) {
  if (config_.sample_proc_stats) update_proc_gauges(*registry_);
  if (config_.sample_cost_tree) {
    CostRegistry::global().publish_gauges(*registry_);
  }
  TimeSeriesPoint point;
  point.t_s = t_s;
  point.metrics = registry_->snapshot();  // taken outside our own lock
  push(std::move(point));
}

void TimeSeriesSampler::push(TimeSeriesPoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < config_.capacity) {
    ring_.push_back(std::move(point));
  } else {
    ring_[next_] = std::move(point);
    next_ = (next_ + 1) % config_.capacity;
  }
  ++total_;
}

std::vector<TimeSeriesPoint> TimeSeriesSampler::window() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TimeSeriesPoint> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t TimeSeriesSampler::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TimeSeriesSampler::sampled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TimeSeriesSampler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::vector<std::pair<double, double>> TimeSeriesSampler::counter_rate(
    const std::string& name) const {
  const auto points = window();
  std::vector<std::pair<double, double>> out;
  for (std::size_t i = 1; i < points.size(); ++i) {
    out.emplace_back(points[i].t_s,
                     rate_between(points[i - 1], points[i], name));
  }
  return out;
}

std::string TimeSeriesSampler::to_csv() const {
  const auto points = window();
  std::string out = "t_s";
  if (points.empty()) return out + "\n";

  // Registrations never disappear, so the newest sample names the
  // superset of columns; older samples read absent names as 0.
  const MetricsSnapshot& latest = points.back().metrics;
  for (const auto& [name, _] : latest.counters) {
    out += "," + name + "," + name + "/s";
  }
  for (const auto& [name, _] : latest.gauges) out += "," + name;
  for (const auto& [name, _] : latest.histograms) {
    out += "," + name + ".count," + name + ".mean";
  }
  out += "\n";

  for (std::size_t i = 0; i < points.size(); ++i) {
    const TimeSeriesPoint& point = points[i];
    out += csv_num(point.t_s);
    for (const auto& [name, _] : latest.counters) {
      out += "," + csv_u64(point.metrics.counter_value(name));
      const double rate =
          i > 0 ? rate_between(points[i - 1], point, name) : 0.0;
      out += "," + csv_num(rate);
    }
    for (const auto& [name, _] : latest.gauges) {
      double value = 0.0;
      for (const auto& [key, v] : point.metrics.gauges) {
        if (key == name) {
          value = v;
          break;
        }
      }
      out += "," + csv_num(value);
    }
    for (const auto& [name, _] : latest.histograms) {
      const HistogramSnapshot* hist = point.metrics.histogram(name);
      out += "," + csv_u64(hist ? hist->count : 0);
      out += "," + csv_num(hist ? hist->mean() : 0.0);
    }
    out += "\n";
  }
  return out;
}

std::string TimeSeriesSampler::to_json() const {
  const auto points = window();
  std::string out = "[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const TimeSeriesPoint& point = points[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"t_s\": " + csv_num(point.t_s) + ", \"counters\": {";
    bool first = true;
    for (const auto& [name, value] : point.metrics.counters) {
      out += first ? "" : ", ";
      out += "\"" + json_escape(name) + "\": " + csv_u64(value);
      first = false;
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto& [name, value] : point.metrics.gauges) {
      out += first ? "" : ", ";
      out += "\"" + json_escape(name) + "\": " + csv_num(value);
      first = false;
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto& [name, hist] : point.metrics.histograms) {
      out += first ? "" : ", ";
      out += "\"" + json_escape(name) +
             "\": {\"count\": " + csv_u64(hist.count) +
             ", \"mean\": " + csv_num(hist.mean()) + "}";
      first = false;
    }
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

bool TimeSeriesSampler::dump_csv(const std::string& path) const {
  return write_text_file(path, to_csv());
}

bool TimeSeriesSampler::dump_json(const std::string& path) const {
  return write_text_file(path, to_json());
}

}  // namespace sstd::obs
