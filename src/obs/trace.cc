#include "obs/trace.h"

#include <algorithm>

namespace sstd::obs {

const char* span_phase_name(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kQueued: return "queued";
    case SpanPhase::kRun: return "run";
    case SpanPhase::kIngest: return "ingest";
    case SpanPhase::kRefit: return "refit";
    case SpanPhase::kDecision: return "decision";
    case SpanPhase::kRecovery: return "recovery";
  }
  return "?";
}

const char* span_outcome_name(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kDispatched: return "dispatched";
    case SpanOutcome::kDone: return "done";
    case SpanOutcome::kFailed: return "failed";
    case SpanOutcome::kRetried: return "retried";
    case SpanOutcome::kAborted: return "aborted";
    case SpanOutcome::kEvicted: return "evicted";
  }
  return "?";
}

const std::string& TraceSpan::attr(const std::string& key) const {
  static const std::string kEmpty;
  for (const auto& [k, v] : attrs) {
    if (k == key) return v;
  }
  return kEmpty;
}

TraceRecorder::TraceRecorder(std::size_t capacity, MetricsRegistry* registry)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::global();
  recorded_counter_ = reg.counter("obs.trace.recorded_spans");
  dropped_counter_ = reg.counter("obs.trace.dropped_spans");
  ring_.reserve(capacity_);
}

void TraceRecorder::record(TraceSpan span) {
  recorded_counter_->inc();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    // Ring wrap: the oldest span is lost. Account for it — silent loss
    // would make a truncated trace indistinguishable from a short one.
    ring_[next_] = std::move(span);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
    dropped_counter_->inc();
  }
  ++total_;
}

std::vector<TraceSpan> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Once the ring is full, `next_` points at the oldest retained span.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<TraceSpan> TraceRecorder::trace(std::uint64_t trace_hi,
                                            std::uint64_t trace_lo) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const TraceSpan& span = ring_[(next_ + i) % ring_.size()];
    if (span.trace_hi == trace_hi && span.trace_lo == trace_lo) {
      out.push_back(span);
    }
  }
  return out;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never dies
  return *recorder;
}

}  // namespace sstd::obs
