#include "obs/trace.h"

#include <algorithm>

namespace sstd::obs {

const char* span_phase_name(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kQueued: return "queued";
    case SpanPhase::kRun: return "run";
  }
  return "?";
}

const char* span_outcome_name(SpanOutcome outcome) {
  switch (outcome) {
    case SpanOutcome::kDispatched: return "dispatched";
    case SpanOutcome::kDone: return "done";
    case SpanOutcome::kFailed: return "failed";
    case SpanOutcome::kRetried: return "retried";
    case SpanOutcome::kAborted: return "aborted";
    case SpanOutcome::kEvicted: return "evicted";
  }
  return "?";
}

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void TraceRecorder::record(const TraceSpan& span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_] = span;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceSpan> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Once the ring is full, `next_` points at the oldest retained span.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t TraceRecorder::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never dies
  return *recorder;
}

}  // namespace sstd::obs
