#include "obs/provenance.h"

#include <algorithm>

namespace sstd::obs {

DecisionProvenanceRing::DecisionProvenanceRing(std::size_t capacity,
                                               MetricsRegistry* registry)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::global();
  recorded_counter_ = reg.counter("obs.provenance.recorded_records");
  dropped_counter_ = reg.counter("obs.provenance.dropped_records");
  ring_.reserve(capacity_);
}

void DecisionProvenanceRing::record(DecisionRecord record) {
  recorded_counter_->inc();
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
    dropped_counter_->inc();
  }
  ++total_;
}

std::vector<DecisionRecord> DecisionProvenanceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DecisionRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<DecisionRecord> DecisionProvenanceRing::for_claim(
    const std::string& claim) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<DecisionRecord> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const DecisionRecord& record = ring_[(next_ + i) % ring_.size()];
    if (record.claim == claim) out.push_back(record);
  }
  return out;
}

std::size_t DecisionProvenanceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t DecisionProvenanceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t DecisionProvenanceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void DecisionProvenanceRing::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
  dropped_ = 0;
}

DecisionProvenanceRing& DecisionProvenanceRing::global() {
  static DecisionProvenanceRing* ring =
      new DecisionProvenanceRing();  // never dies
  return *ring;
}

}  // namespace sstd::obs
