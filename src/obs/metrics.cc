#include "obs/metrics.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace sstd::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() → overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::observe_exemplar(double value, std::uint64_t trace_hi,
                                 std::uint64_t trace_lo,
                                 std::uint64_t span_id) {
  observe(value);
  if ((trace_hi | trace_lo) == 0) return;  // untraced: plain observation
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_.empty()) exemplars_.resize(bounds_.size() + 1);
  exemplars_[bucket] = {value, trace_hi, trace_lo, span_id};
  has_exemplars_.store(true, std::memory_order_release);
}

std::vector<HistogramExemplar> Histogram::exemplars() const {
  if (!has_exemplars()) return {};
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return exemplars_;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  exemplars_.clear();
  has_exemplars_.store(false, std::memory_order_release);
}

std::vector<double> Histogram::default_latency_bounds() {
  return {0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
          0.25,  0.5,    1.0,   2.5,  5.0,   10.0, 30.0};
}

double HistogramSnapshot::quantile(double q) const {
  // No observations → no quantile. NaN, not 0: a 0 would read as "every
  // observation was instant". JSON exporters map it to null.
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (static_cast<double>(cumulative + in_bucket) >= rank &&
        in_bucket > 0) {
      // Interpolate inside [lo, hi); the overflow bucket has no upper
      // bound, so report its lower edge.
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      if (i >= bounds.size()) return lo;
      const double hi = bounds[i];
      const double into =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& [key, value] : counters) {
    if (key == name) return value;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& [key, value] : histograms) {
    if (key == name) return &value;
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.gauge || entry.histogram) {
    throw std::logic_error("metric '" + name + "' is not a counter");
  }
  if (!entry.counter) entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.counter || entry.histogram) {
    throw std::logic_error("metric '" + name + "' is not a gauge");
  }
  if (!entry.gauge) entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[name];
  if (entry.counter || entry.gauge) {
    throw std::logic_error("metric '" + name + "' is not a histogram");
  }
  if (!entry.histogram) {
    entry.histogram = std::make_unique<Histogram>(
        upper_bounds.empty() ? Histogram::default_latency_bounds()
                             : std::move(upper_bounds));
  }
  return entry.histogram.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, entry] : entries_) {  // std::map: sorted by name
    if (entry.counter) {
      out.counters.emplace_back(name, entry.counter->value());
    } else if (entry.gauge) {
      out.gauges.emplace_back(name, entry.gauge->value());
    } else if (entry.histogram) {
      HistogramSnapshot snap;
      snap.bounds = entry.histogram->bounds();
      snap.buckets.resize(snap.bounds.size() + 1);
      for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
        snap.buckets[i] = entry.histogram->bucket_count(i);
      }
      snap.count = entry.histogram->count();
      snap.sum = entry.histogram->sum();
      snap.exemplars = entry.histogram->exemplars();
      out.histograms.emplace_back(name, std::move(snap));
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [_, entry] : entries_) {
    if (entry.counter) entry.counter->reset();
    if (entry.gauge) entry.gauge->reset();
    if (entry.histogram) entry.histogram->reset();
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

}  // namespace sstd::obs
