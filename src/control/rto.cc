#include "control/rto.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sstd::control {

RtoResult RtoAllocator::allocate(const std::vector<RtoJob>& jobs,
                                 double now) const {
  RtoResult result;
  result.workers = options_.min_workers;
  if (jobs.empty()) return result;

  // Required capacity w_u = D_u * theta2 / slack_u for every job with a
  // live deadline. A non-positive slack means the deadline is already
  // blown: the job is infeasible but still deserves capacity, so it gets
  // the capacity it would need to finish within one more WCET-quantum
  // (heuristic: slack floor of 5% of a second).
  constexpr double kSlackFloor = 0.05;
  std::vector<double> required(jobs.size());
  double total_required = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const double slack = jobs[i].deadline_s - now;
    const double effective = std::max(slack, kSlackFloor);
    const double work =
        wcet_.task_init_s + jobs[i].data_size * wcet_.theta2;
    required[i] = work / effective;
    // A job cannot use more workers than it has tasks: past that point
    // extra capacity is wasted on it, so the demand is capped (this is
    // what keeps the pool from ballooning on already-hopeless jobs).
    if (options_.max_parallelism_per_job > 0.0) {
      required[i] = std::min(required[i], options_.max_parallelism_per_job);
    }
    total_required += required[i];
  }

  // Minimal integer pool meeting every constraint (Eq. 12 rearranged).
  const double continuous =
      std::max(total_required, static_cast<double>(options_.min_workers));
  std::size_t workers = static_cast<std::size_t>(std::ceil(continuous - 1e-9));
  workers = std::clamp(workers, options_.min_workers, options_.max_workers);
  result.workers = workers;

  // Optimal shares are the normalized requirements.
  const double norm = total_required > 0.0 ? total_required
                                           : static_cast<double>(jobs.size());
  result.jobs.resize(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    RtoAllocation& alloc = result.jobs[i];
    alloc.job = jobs[i].job;
    alloc.share = total_required > 0.0
                      ? required[i] / norm
                      : 1.0 / static_cast<double>(jobs.size());
    // Feasibility at the chosen (possibly clamped) pool size, including
    // the indivisibility bound when per-job parallelism is capped.
    const double slack = jobs[i].deadline_s - now;
    const double capacity = std::min(
        static_cast<double>(workers) * std::max(alloc.share, 1e-12),
        options_.max_parallelism_per_job > 0.0
            ? options_.max_parallelism_per_job
            : static_cast<double>(workers));
    const double wcet =
        (wcet_.task_init_s + jobs[i].data_size * wcet_.theta2) / capacity;
    alloc.feasible = slack > 0.0 && wcet <= slack + 1e-9;
    result.all_feasible = result.all_feasible && alloc.feasible;
  }

  // Largest-remainder apportionment of the task budget (every job gets at
  // least one task).
  const int budget =
      std::max(options_.task_budget, static_cast<int>(jobs.size()));
  std::vector<double> quota(jobs.size());
  std::vector<int> assigned(jobs.size());
  int used = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    quota[i] = result.jobs[i].share * budget;
    assigned[i] = std::max(1, static_cast<int>(std::floor(quota[i])));
    used += assigned[i];
  }
  // Distribute leftovers to the largest fractional remainders.
  std::vector<std::size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return quota[a] - std::floor(quota[a]) > quota[b] - std::floor(quota[b]);
  });
  for (std::size_t rank = 0; used < budget && rank < order.size(); ++rank) {
    ++assigned[order[rank]];
    ++used;
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    result.jobs[i].tasks = assigned[i];
  }
  return result;
}

}  // namespace sstd::control
