// Dynamic Task Manager (paper §IV-B/C, Fig. 2 & 3): the Work Queue master
// component that watches every TD job's progress against its soft deadline
// and steers two knobs —
//
//   LCK (Local Control Knob):  per-job priority / task share
//   GCK (Global Control Knob): worker-pool size
//
// One PID controller per job turns the deadline error into a control
// signal (Eq. 9); the DTM converts signals into multiplicative priority
// updates (theta3) and pool resizing (theta4). theta3=2.0 and theta4=1.5
// follow the paper's heuristic tuning (§V-A3).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "control/pid.h"
#include "control/wcet.h"
#include "dist/task.h"
#include "obs/metrics.h"
#include "obs/slo.h"

namespace sstd::control {

struct DtmConfig {
  PidGains gains;                 // paper defaults Kp=1.2 Ki=0.3 Kd=0.2
  double sample_period_s = 1.0;   // §IV-C3: sampling rate of 1 second
  double theta3 = 2.0;            // LCK update gain
  double theta4 = 1.5;            // GCK update gain
  std::size_t min_workers = 1;
  std::size_t max_workers = 128;

  // Scale-down hysteresis: the pool shrinks (by one) only after this many
  // consecutive samples in which every job had >50% of its deadline budget
  // to spare. Scale-up is immediate — a missed deadline costs more than an
  // idle worker.
  int scale_down_patience = 3;

  // Fault compensation gain (GCK over an unreliable pool): every eviction
  // or failed task attempt observed since the previous sample is work the
  // pool must redo, so the worker target grows by ceil(theta5 x observed
  // events), capped below. Closes the paper's feedback loop over the
  // scavenged-desktop failure model: a crashy pool is simply a slow pool,
  // and the GCK buys the lost throughput back.
  double theta5 = 0.5;
  std::size_t max_fault_compensation = 8;

  WcetParams wcet;
};

// Cumulative fault counters the runtime exposes (WorkQueueStats /
// SimCluster::evictions + task_failures). The DTM differentiates them
// across samples to estimate the current failure rate.
struct FaultObservation {
  std::uint64_t evictions = 0;
  std::uint64_t task_failures = 0;
};

// The DTM's verdict for one sampling step; the runtime driver applies it
// to the cluster (simulated or threaded).
struct DtmDecision {
  std::vector<std::pair<dist::JobId, double>> priorities;  // LCK
  std::size_t worker_target = 1;                           // GCK
  double total_lateness_signal = 0.0;                      // diagnostics
  std::size_t fault_compensation = 0;  // extra workers for observed faults
};

class DynamicTaskManager {
 public:
  explicit DynamicTaskManager(DtmConfig config = {});

  // Registers a TD job with its soft deadline (absolute sim time).
  void register_job(dist::JobId job, double deadline_s);
  void complete_job(dist::JobId job);
  bool has_job(dist::JobId job) const { return jobs_.contains(job); }
  std::size_t active_jobs() const { return jobs_.size(); }

  // Current priority weight of a job (what new tasks are submitted with).
  double priority(dist::JobId job) const;

  // One control sample at time `now`. `remaining_data[job]` is the data
  // volume still queued/unprocessed for the job; `workers` the current
  // pool size. Updates the internal PIDs and returns the knob settings.
  DtmDecision sample(
      double now,
      const std::unordered_map<dist::JobId, double>& remaining_data,
      std::size_t workers);

  // Sample with fault feedback: `faults` carries the runtime's cumulative
  // eviction/failure counters; the delta since the previous sample grows
  // the worker target by ceil(theta5 x delta) (GCK compensation).
  DtmDecision sample(
      double now,
      const std::unordered_map<dist::JobId, double>& remaining_data,
      std::size_t workers, const FaultObservation& faults);

  const WcetModel& wcet() const { return wcet_; }

  // Redirects dtm.* metrics (per-sample error/signal histograms, knob-move
  // counters) away from the process-global registry.
  void set_metrics(obs::MetricsRegistry* registry);

  // --- Deadline-SLO accounting (ISSUE 3, DESIGN.md §5c) ---------------

  // Records that one unit of `job`'s work (e.g. one interval batch) took
  // `elapsed_s` against the job's registered deadline budget: a hit iff
  // elapsed_s <= deadline. Counted internally (deadline_stats()) and
  // forwarded to the attached SloTracker, so the exported hit ratio and
  // the controller's own view agree exactly. Unregistered jobs are
  // ignored.
  void observe_completion(dist::JobId job, double elapsed_s);

  // Internal hit/miss tally across every observe_completion() call.
  struct DeadlineStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double hit_ratio() const {
      const std::uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
  };
  DeadlineStats deadline_stats() const { return deadline_stats_; }

  // Attaches an SLO tracker: jobs already registered (and all future
  // registrations) are mirrored into it, and observe_completion() feeds
  // it. Pass nullptr to detach.
  void set_slo_tracker(obs::SloTracker* tracker);

 private:
  struct JobState {
    double deadline_s = 0.0;
    double weight = 1.0;  // LCK priority weight
    PidController pid;
  };

  // Pre-resolved dtm.* instruments (obs/metrics.h).
  struct Instruments {
    obs::Counter* samples = nullptr;
    obs::Counter* lck_updates = nullptr;
    obs::Counter* gck_moves = nullptr;
    obs::Counter* fault_compensation_workers = nullptr;
    obs::Gauge* worker_target = nullptr;
    obs::Gauge* lateness_signal = nullptr;
    obs::Histogram* error_s = nullptr;
    obs::Histogram* signal = nullptr;
  };

  void resolve_instruments(obs::MetricsRegistry* registry);

  DtmConfig config_;
  WcetModel wcet_;
  std::unordered_map<dist::JobId, JobState> jobs_;
  int comfortable_samples_ = 0;
  FaultObservation last_faults_;
  Instruments ins_;
  DeadlineStats deadline_stats_;
  obs::SloTracker* slo_ = nullptr;
};

}  // namespace sstd::control
