#include "control/wcet.h"

#include <algorithm>

namespace sstd::control {

double WcetModel::task_execution_s(double data_size) const {
  return params_.task_init_s + data_size * params_.theta1;
}

double WcetModel::wcet_s(double data_size, std::size_t tasks_of_job,
                         std::size_t total_tasks,
                         std::size_t workers) const {
  const double t_u = static_cast<double>(std::max<std::size_t>(1, tasks_of_job));
  const double total =
      static_cast<double>(std::max(total_tasks, tasks_of_job));
  const double wk = static_cast<double>(std::max<std::size_t>(1, workers));
  return params_.task_init_s * t_u +
         data_size * params_.theta2 * total / (wk * t_u);
}

double WcetModel::wcet_simplified_s(double data_size, double priority_share,
                                    std::size_t workers) const {
  const double share = std::max(priority_share, 1e-6);
  const double wk = static_cast<double>(std::max<std::size_t>(1, workers));
  return data_size * params_.theta2 / (wk * share);
}

}  // namespace sstd::control
