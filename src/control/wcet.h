// Worst-Case Execution Time model (paper §IV-C4, Eq. 10-12):
//
//   ET_u     = TI + D_u * theta1                                  (Eq. 10)
//   WCET_u   = TI * T_u + D_u * theta2 * (sum_v T_v) / (WK * T_u) (Eq. 11)
//   WCET_u  ~=  D_u * theta2 / (WK * P_u)                         (Eq. 12)
//
// where D_u is the job's data volume, T_u its task count, WK the worker
// pool size and P_u = T_u / sum_v T_v the job's priority share. The DTM
// uses Eq. 12 to project each job's finish time from the current knobs.
#pragma once

#include <cstddef>

namespace sstd::control {

struct WcetParams {
  double task_init_s = 0.25;  // TI
  double theta1 = 2.0e-6;     // per-unit compute time (Eq. 10)
  double theta2 = 2.4e-6;     // per-unit end-to-end time incl. overheads
};

class WcetModel {
 public:
  explicit WcetModel(WcetParams params = {}) : params_(params) {}

  const WcetParams& params() const { return params_; }

  // Eq. 10: execution time of a single task of `data_size` units.
  double task_execution_s(double data_size) const;

  // Eq. 11: full WCET with explicit task count.
  double wcet_s(double data_size, std::size_t tasks_of_job,
                std::size_t total_tasks, std::size_t workers) const;

  // Eq. 12: simplified WCET given the job's priority share P_u in (0, 1].
  double wcet_simplified_s(double data_size, double priority_share,
                           std::size_t workers) const;

 private:
  WcetParams params_;
};

}  // namespace sstd::control
