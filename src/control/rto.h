// Real-Time Optimization of the control knobs — the paper's stated future
// work (§VII: "formulate the system optimization as an integer linear
// programming (ILP) problem that targets at finding the optimal integer
// values for the number of workers and the number of tasks for each job").
//
// Under the paper's own WCET model (Eq. 12), the optimization
//
//   minimize  WK
//   s.t.      D_u * theta2 / (WK * P_u) <= slack_u   for all jobs u
//             sum_u P_u = 1,  P_u > 0,  WK integer in [1, max]
//
// has a closed-form continuous optimum: each job needs capacity
// w_u = (TI + D_u * theta2) / slack_u (the fixed task-init cost is part of
// the work), so the minimal pool is
// WK* = ceil(sum_u w_u) and the optimal shares are P_u = w_u / sum_u w_u
// (any spare capacity keeps the same proportions, preserving feasibility).
// Integer task counts T_u (the paper's priority is P_u = T_u / sum T) are
// produced by largest-remainder apportionment of a task budget. No LP
// solver is needed — the exact optimum is computable directly, which is
// precisely why the paper expected RTO to be viable.
#pragma once

#include <cstdint>
#include <vector>

#include "control/wcet.h"
#include "dist/task.h"

namespace sstd::control {

struct RtoJob {
  dist::JobId job = 0;
  double data_size = 0.0;   // remaining volume D_u
  double deadline_s = 0.0;  // absolute deadline
};

struct RtoAllocation {
  dist::JobId job = 0;
  double share = 0.0;       // optimal priority share P_u
  int tasks = 1;            // integer task count T_u (apportioned)
  bool feasible = true;     // false if even max_workers cannot meet it
};

struct RtoResult {
  std::size_t workers = 1;           // minimal WK meeting all deadlines
  bool all_feasible = true;          // every job can meet its deadline
  std::vector<RtoAllocation> jobs;
};

class RtoAllocator {
 public:
  struct Options {
    std::size_t min_workers = 1;
    std::size_t max_workers = 128;
    int task_budget = 64;  // total tasks apportioned across jobs

    // Upper bound on how many workers one job can use concurrently
    // (a job split into T_u tasks can use at most T_u). 0 = unbounded.
    // Deadline-experiment drivers submitting one task per job set 1.
    double max_parallelism_per_job = 0.0;
  };

  RtoAllocator(WcetParams wcet, Options options)
      : wcet_(wcet), options_(options) {}

  // Solves the allocation at time `now`. Jobs whose deadline already
  // passed (or is unreachable even with max_workers) are marked
  // infeasible and given best-effort shares.
  RtoResult allocate(const std::vector<RtoJob>& jobs, double now) const;

 private:
  WcetParams wcet_;
  Options options_;
};

}  // namespace sstd::control
