#include "control/pid.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace sstd::control {

double PidController::step(double error, double dt) {
  // Controllers are value types created per job, so the step counter is
  // resolved once per process rather than per instance.
  static obs::Counter* const steps =
      obs::MetricsRegistry::global().counter("dtm.pid_steps");
  steps->inc();
  if (dt <= 0.0) dt = 1e-6;

  integral_ += error * dt;
  if (gains_.ki > 0.0) {
    const double cap = gains_.integral_limit / gains_.ki;
    integral_ = std::clamp(integral_, -cap, cap);
  }

  const double derivative =
      has_previous_ ? (error - previous_error_) / dt : 0.0;
  previous_error_ = error;
  has_previous_ = true;

  return gains_.kp * error + gains_.ki * integral_ + gains_.kd * derivative;
}

void PidController::reset() {
  integral_ = 0.0;
  previous_error_ = 0.0;
  has_previous_ = false;
}

}  // namespace sstd::control
