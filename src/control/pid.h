// PID feedback controller (paper §IV-C3, Eq. 9):
//
//   y(k) = Kp e(k) + Ki sum_0^k e(k) dt + Kd (e(k) - e(k-1)) / dt
//
// The SSTD scheme uses one controller per TD job with the job's deadline
// as the setpoint and its (projected) completion time as the measured
// process variable. The paper's tuned coefficients are Kp=1.2, Ki=0.3,
// Kd=0.2 (§V-A3), which are this struct's defaults.
#pragma once

namespace sstd::control {

struct PidGains {
  double kp = 1.2;
  double ki = 0.3;
  double kd = 0.2;

  // Anti-windup clamp on the integral term's contribution (|Ki * I|).
  double integral_limit = 50.0;
};

class PidController {
 public:
  explicit PidController(PidGains gains = {}) : gains_(gains) {}

  // One control step with error e = measured - setpoint over `dt` seconds.
  // Positive error (projected finish past the deadline) yields a positive
  // signal — "speed this job up".
  double step(double error, double dt);

  void reset();

  double integral() const { return integral_; }

 private:
  PidGains gains_;
  double integral_ = 0.0;
  double previous_error_ = 0.0;
  bool has_previous_ = false;
};

}  // namespace sstd::control
