#include "control/dtm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sstd::control {

namespace {

// Deadline errors and PID signals are signed (negative = slack); symmetric
// second-scale buckets.
std::vector<double> signed_seconds_bounds() {
  return {-30.0, -10.0, -5.0, -2.5, -1.0, -0.5, 0.0,
          0.5,   1.0,   2.5,  5.0,  10.0, 30.0};
}

}  // namespace

void DynamicTaskManager::resolve_instruments(obs::MetricsRegistry* registry) {
  ins_.samples = registry->counter("dtm.samples");
  ins_.lck_updates = registry->counter("dtm.lck_updates");
  ins_.gck_moves = registry->counter("dtm.gck_moves");
  ins_.fault_compensation_workers =
      registry->counter("dtm.fault_compensation_workers");
  ins_.worker_target = registry->gauge("dtm.worker_target");
  ins_.lateness_signal = registry->gauge("dtm.lateness_signal");
  ins_.error_s = registry->histogram("dtm.error_s", signed_seconds_bounds());
  ins_.signal = registry->histogram("dtm.signal", signed_seconds_bounds());
}

void DynamicTaskManager::set_metrics(obs::MetricsRegistry* registry) {
  resolve_instruments(registry);
}

DynamicTaskManager::DynamicTaskManager(DtmConfig config)
    : config_(config), wcet_(config.wcet) {
  resolve_instruments(&obs::MetricsRegistry::global());
}

void DynamicTaskManager::register_job(dist::JobId job, double deadline_s) {
  JobState state;
  state.deadline_s = deadline_s;
  state.pid = PidController(config_.gains);
  jobs_.insert_or_assign(job, std::move(state));
  if (slo_ != nullptr) slo_->register_job(job, deadline_s);
}

void DynamicTaskManager::set_slo_tracker(obs::SloTracker* tracker) {
  slo_ = tracker;
  if (slo_ == nullptr) return;
  for (const auto& [job, state] : jobs_) {
    slo_->register_job(job, state.deadline_s);
  }
}

void DynamicTaskManager::observe_completion(dist::JobId job,
                                            double elapsed_s) {
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return;
  if (elapsed_s <= it->second.deadline_s) {
    ++deadline_stats_.hits;
  } else {
    ++deadline_stats_.misses;
  }
  if (slo_ != nullptr) slo_->record_completion(job, elapsed_s);
}

void DynamicTaskManager::complete_job(dist::JobId job) { jobs_.erase(job); }

double DynamicTaskManager::priority(dist::JobId job) const {
  const auto it = jobs_.find(job);
  return it != jobs_.end() ? it->second.weight : 1.0;
}

DtmDecision DynamicTaskManager::sample(
    double now,
    const std::unordered_map<dist::JobId, double>& remaining_data,
    std::size_t workers) {
  // No fault feedback: re-use the last observation, so the delta is zero.
  return sample(now, remaining_data, workers, last_faults_);
}

DtmDecision DynamicTaskManager::sample(
    double now,
    const std::unordered_map<dist::JobId, double>& remaining_data,
    std::size_t workers, const FaultObservation& faults) {
  // Counters are cumulative and monotone; the delta since the previous
  // sample is the fault rate the pool is currently paying for.
  const std::uint64_t delta =
      (faults.evictions - std::min(faults.evictions, last_faults_.evictions)) +
      (faults.task_failures -
       std::min(faults.task_failures, last_faults_.task_failures));
  last_faults_ = faults;

  DtmDecision decision;
  decision.worker_target = workers;
  ins_.samples->inc();
  if (jobs_.empty()) return decision;

  double total_weight = 0.0;
  for (const auto& [_, state] : jobs_) total_weight += state.weight;
  if (total_weight <= 0.0) total_weight = 1.0;

  double positive_signal = 0.0;
  double total_signal = 0.0;
  double min_relative_slack = std::numeric_limits<double>::infinity();
  for (auto& [job, state] : jobs_) {
    const auto it = remaining_data.find(job);
    const double remaining = it != remaining_data.end() ? it->second : 0.0;

    // Projected completion via Eq. 12, with this job's current share of
    // the priority mass standing in for P_u.
    const double share = state.weight / total_weight;
    const double projected_finish =
        now + wcet_.wcet_simplified_s(remaining, share, workers);
    const double error = projected_finish - state.deadline_s;
    const double signal = state.pid.step(error, config_.sample_period_s);
    ins_.error_s->observe(error);
    ins_.signal->observe(signal);
    total_signal += signal;
    if (signal > 0.0) positive_signal += signal;

    const double horizon = std::max(state.deadline_s - now, 1e-6);
    min_relative_slack =
        std::min(min_relative_slack, -error / horizon);

    // LCK: multiplicative weight update, bounded so one runaway job cannot
    // starve the rest forever. tanh softens large PID excursions.
    state.weight *= std::exp(config_.theta3 * std::tanh(signal / 10.0));
    state.weight = std::clamp(state.weight, 1e-3, 1e3);

    decision.priorities.emplace_back(job, state.weight);
    ins_.lck_updates->inc();
  }

  // GCK — asymmetric on purpose. Missing a deadline is expensive while an
  // idle worker is cheap, so the pool grows proportionally to the summed
  // lateness pressure but shrinks by at most one worker per sample, and
  // only when every job is projected to finish with >50% of its remaining
  // deadline budget to spare.
  decision.total_lateness_signal = total_signal;
  long long target = static_cast<long long>(workers);
  if (positive_signal > 0.0) {
    comfortable_samples_ = 0;
    const double normalized =
        positive_signal /
        static_cast<double>(std::max<std::size_t>(1, jobs_.size()));
    target += std::max<long long>(
        1, static_cast<long long>(std::llround(
               config_.theta4 * std::tanh(normalized / 10.0) *
               static_cast<double>(workers))));
  } else if (min_relative_slack > 0.5) {
    if (++comfortable_samples_ >= config_.scale_down_patience) {
      target -= 1;
      comfortable_samples_ = 0;
    }
  } else {
    comfortable_samples_ = 0;
  }
  // Fault compensation: every eviction/failed attempt since the previous
  // sample is redone work. A crashy pool behaves like a slower pool, so
  // the GCK buys the lost throughput back with extra workers.
  if (delta > 0 && config_.theta5 > 0.0) {
    const auto extra = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(config_.max_fault_compensation),
        std::ceil(config_.theta5 * static_cast<double>(delta))));
    decision.fault_compensation = extra;
    ins_.fault_compensation_workers->inc(extra);
    target += static_cast<long long>(extra);
    comfortable_samples_ = 0;
  }
  target = std::clamp<long long>(
      target, static_cast<long long>(config_.min_workers),
      static_cast<long long>(config_.max_workers));
  decision.worker_target = static_cast<std::size_t>(target);
  ins_.worker_target->set(static_cast<double>(decision.worker_target));
  ins_.lateness_signal->set(total_signal);
  if (decision.worker_target != workers) ins_.gck_moves->inc();
  return decision;
}

}  // namespace sstd::control
