#!/usr/bin/env python3
"""Bench regression gate (ISSUE 10 satellite): compares freshly produced
BENCH_*.json artifacts against the committed baselines with per-metric
tolerances, so a perf regression fails ctest instead of silently landing
in the repo.

Stdlib-only by design (json + argparse); wired as a bench_smoke-labeled
ctest that DEPENDS on the producing smoke benches.

Comparison rules per bench:

  structural    — required JSON keys must exist in the fresh artifact
  bool          — named flags must be true (e.g. soak "ok")
  abs ceiling   — overhead percentages must stay under a generous cap
                  (smoke runs are noisy; the cap catches order-of-
                  magnitude regressions, not single-digit drift)
  ratio floor   — throughput must stay above `min_ratio` x baseline,
                  compared ONLY when the meta provenance (workload,
                  seed, build_type) matches: a smoke run against a
                  full-scale committed baseline is not comparable, and
                  neither is a Debug build against a Release baseline.

A missing baseline is a warning, not a failure (first run of a new
bench); a missing or malformed fresh artifact always fails.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def walk(doc, dotted):
    """Fetch "a.b.c" from nested dicts; returns None when absent."""
    node = doc
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def provenance_matches(fresh, base):
    fm, bm = fresh.get("meta", {}), base.get("meta", {})
    keys = ("workload", "seed", "build_type", "num_claims")
    return all(fm.get(k) is not None and fm.get(k) == bm.get(k) for k in keys)


# Per-bench gate spec. `ratio` entries are (dotted_metric, min_ratio)
# and only apply when provenance matches; `ceiling` entries are
# (dotted_metric, max_value[, guard_flag]) absolute checks on the fresh
# artifact — when a guard flag is named and not true in the artifact,
# the bench itself declared the number below its noise floor (e.g. a
# sub-second smoke run) and the ceiling is skipped with a warning.
SPECS = {
    "BENCH_micro_hmm.json": {
        "required": ["meta", "engines", "speedup_refits_scaled_vs_logspace"],
        "ratio": [("speedup_refits_scaled_vs_logspace", 0.4)],
    },
    "BENCH_soak.json": {
        "required": ["meta", "totals", "staleness", "assertions", "ok"],
        "true": ["ok"],
        "ratio": [("totals.run_reports_per_sec", 0.4)],
    },
    "BENCH_trace_overhead.json": {
        "required": ["meta", "modes", "full_tracing_overhead_pct"],
        "ceiling": [("full_tracing_overhead_pct", 30.0)],
    },
    "BENCH_recovery.json": {
        "required": ["meta"],
    },
    "BENCH_prof_overhead.json": {
        "required": ["meta", "modes", "prof_hz", "profiler_overhead_pct"],
        "ceiling": [("profiler_overhead_pct", 10.0, "overhead_measurable")],
    },
}


def gate_one(name, fresh_dir, baseline_dir, failures, warnings):
    spec = SPECS[name]
    fresh_path = os.path.join(fresh_dir, name)
    if not os.path.exists(fresh_path):
        failures.append(f"{name}: fresh artifact missing at {fresh_path}")
        return
    try:
        fresh = load(fresh_path)
    except (json.JSONDecodeError, OSError) as err:
        failures.append(f"{name}: fresh artifact unreadable: {err}")
        return

    for key in spec.get("required", []):
        if walk(fresh, key) is None:
            failures.append(f"{name}: missing required key '{key}'")
    for key in spec.get("true", []):
        if walk(fresh, key) is not True:
            failures.append(f"{name}: flag '{key}' is not true")
    for entry in spec.get("ceiling", []):
        key, cap = entry[0], entry[1]
        guard = entry[2] if len(entry) > 2 else None
        if guard is not None and walk(fresh, guard) is not True:
            warnings.append(f"{name}: '{guard}' not true — {key} below "
                            "noise floor, ceiling skipped")
            continue
        value = walk(fresh, key)
        if isinstance(value, (int, float)) and value > cap:
            failures.append(f"{name}: {key} = {value:.3f} exceeds cap {cap}")

    base_path = os.path.join(baseline_dir, name)
    if not os.path.exists(base_path):
        warnings.append(f"{name}: no committed baseline (new bench?) — "
                        "ratio checks skipped")
        return
    try:
        base = load(base_path)
    except (json.JSONDecodeError, OSError) as err:
        failures.append(f"{name}: committed baseline unreadable: {err}")
        return

    if not provenance_matches(fresh, base):
        warnings.append(f"{name}: provenance differs from baseline "
                        "(workload/seed/build) — ratio checks skipped")
        return
    for key, min_ratio in spec.get("ratio", []):
        fresh_v, base_v = walk(fresh, key), walk(base, key)
        if not isinstance(fresh_v, (int, float)) or \
           not isinstance(base_v, (int, float)) or base_v <= 0:
            warnings.append(f"{name}: {key} not comparable — skipped")
            continue
        ratio = fresh_v / base_v
        if ratio < min_ratio:
            failures.append(
                f"{name}: {key} regressed to {ratio:.2f}x baseline "
                f"({fresh_v:.3g} vs {base_v:.3g}, floor {min_ratio}x)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh-dir", default="bench_results",
                        help="directory with freshly produced BENCH_*.json")
    parser.add_argument("--baseline-dir", required=True,
                        help="directory with committed baseline BENCH_*.json")
    parser.add_argument("--bench", action="append", default=None,
                        help="artifact filename to gate (repeatable); "
                             "default: every known BENCH_*.json present "
                             "in the fresh dir")
    args = parser.parse_args()

    names = args.bench
    if not names:
        names = [n for n in sorted(SPECS)
                 if os.path.exists(os.path.join(args.fresh_dir, n))]
        if not names:
            print(f"bench_gate: no known BENCH_*.json under "
                  f"{args.fresh_dir}", file=sys.stderr)
            return 1
    failures, warnings = [], []
    for name in names:
        if name not in SPECS:
            failures.append(f"{name}: no gate spec for this artifact")
            continue
        gate_one(name, args.fresh_dir, args.baseline_dir, failures, warnings)

    for w in warnings:
        print(f"bench_gate: WARN {w}")
    for f in failures:
        print(f"bench_gate: FAIL {f}", file=sys.stderr)
    print(f"bench_gate: {len(names)} artifact(s), {len(failures)} failure(s),"
          f" {len(warnings)} warning(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
