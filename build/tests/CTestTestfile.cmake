# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/hmm_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/dist_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/sstd_engine_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/fault_tolerance_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/property_hmm_test[1]_include.cmake")
include("/root/repo/build/tests/property_core_test[1]_include.cmake")
include("/root/repo/build/tests/property_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/property_sim_test[1]_include.cmake")
include("/root/repo/build/tests/rto_test[1]_include.cmake")
include("/root/repo/build/tests/correlated_test[1]_include.cmake")
include("/root/repo/build/tests/property_text_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/soft_output_test[1]_include.cmake")
include("/root/repo/build/tests/naive_bayes_test[1]_include.cmake")
include("/root/repo/build/tests/multivalue_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_file_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/property_serialize_test[1]_include.cmake")
