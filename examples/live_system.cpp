// live_system: the complete Figure-2 runtime (SstdSystem) fed by a
// simulated crawler, with the PID control loop live — and observable the
// way a production deployment would be (DESIGN.md §5c): a telemetry HTTP
// endpoint serves /metrics, /healthz, /readyz, /varz, /snapshot.json,
// /trace.json and /timeseries.csv while the run is in flight, a
// time-series sampler retains the metric history, and the deadline SLO
// tracker scores every interval against its soft deadline.
//
//   $ ./live_system                # serve on an ephemeral port
//   $ ./live_system 9114          # serve on a fixed port
//   $ ./live_system 9114 30      # ...and keep serving 30 s after the run
//   $ curl localhost:9114/metrics
//
// With --durable <dir> the runtime keeps its state history on disk (WAL +
// periodic snapshots, DESIGN.md §7) and recovers from it on startup, so a
// kill -9 mid-run is survivable:
//
//   $ ./live_system --durable /tmp/sstd-node --pace-ms 100 &  # note the pid
//   $ kill -9 <pid>                                           # crash mid-run
//   $ ./live_system --durable /tmp/sstd-node                  # resumes
//
// --pace-ms throttles the simulated crawler to one interval per that many
// milliseconds, so the run is long enough to crash by hand (the unpaced
// trace finishes in well under a second).
//
// Continuous profiling (DESIGN.md §5e): /profile/cpu?seconds=N serves
// on-demand folded stacks and /cost.json the phase cost tree; with
// --profile-hz N the sampling profiler additionally stays armed for the
// whole run and the folded stacks land in live_system_profile.folded.
//
//   $ ./live_system --profile-hz 97 --reports 1000000 --claims 2000 9114 30 &
//   $ curl 'localhost:9114/profile/cpu?seconds=1'   # flamegraph.pl-ready
//   $ curl localhost:9114/cost.json                 # self/total per phase
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "core/metrics.h"
#include "obs/cost.h"
#include "obs/http_exposition.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "sstd/system.h"
#include "trace/generator.h"

using namespace sstd;

int main(int argc, char** argv) {
  int port = 0;
  int linger_s = 0;
  int pace_ms = 0;
  int profile_hz = 0;
  int feed_reports = 80'000;
  int feed_claims = 32;
  std::string durable_dir;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--durable") == 0 && i + 1 < argc) {
      durable_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--pace-ms") == 0 && i + 1 < argc) {
      pace_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--profile-hz") == 0 && i + 1 < argc) {
      profile_hz = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--reports") == 0 && i + 1 < argc) {
      feed_reports = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--claims") == 0 && i + 1 < argc) {
      feed_claims = std::atoi(argv[++i]);
    } else if (positional == 0) {
      port = std::atoi(argv[i]);
      ++positional;
    } else {
      linger_s = std::atoi(argv[i]);
      ++positional;
    }
  }

  // --reports/--claims scale the simulated feed: the stock 80k-report /
  // 32-claim run burns ~0.15 s of CPU; profiling a genuinely busy node
  // wants a few seconds of sustained HMM load (claims drive refit/decode
  // cost), e.g. --reports 1000000 --claims 2000.
  auto config = trace::tiny(trace::boston_bombing(), feed_reports, feed_claims);
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();
  std::printf("crawler feed ready: %zu reports over %d intervals\n",
              data.num_reports(), data.intervals());

  SstdSystem::Config system_config;
  system_config.workers = 2;  // deliberately underprovisioned at start
  system_config.num_jobs = 8;
  system_config.interval_deadline_s = 0.02;
  system_config.dtm.max_workers = 8;
  if (!durable_dir.empty()) {
    system_config.durability.dir = durable_dir;
    system_config.durability.snapshot_every = 10;
  }
  // Causal tracing (DESIGN.md §5d): one in twenty reports roots a trace;
  // each shard-interval promotes its first candidate to task trace
  // parent, so /trace.json?trace_id=… reconstructs ingest → attempt
  // spans (retries included) → refit → decision for live chains.
  system_config.trace_sample_rate = 0.05;
  SstdSystem system(system_config, data.interval_ms());

  // Node restart: load the newest snapshot, replay the WAL suffix, resume
  // at the first undecided interval (a blank directory cold-starts at 0).
  IntervalIndex first_interval = 0;
  if (!durable_dir.empty()) {
    const auto recovered = system.recover();
    first_interval = recovered.next_interval;
    if (recovered.snapshot_loaded || recovered.replayed_records > 0) {
      std::printf(
          "recovered from %s: snapshot@%d + %llu replayed records in %.3f s "
          "— resuming at interval %d\n",
          durable_dir.c_str(), recovered.snapshot_interval,
          static_cast<unsigned long long>(recovered.replayed_records),
          recovered.seconds, first_interval);
    } else {
      std::printf("durable dir %s is blank — cold start\n",
                  durable_dir.c_str());
    }
  }

  // Live exposition over the process-global registry the runtime
  // instruments against. Readiness is keyed on the Work Queue: alive,
  // at least one live worker, backlog under control.
  obs::HttpExpositionConfig http_config;
  http_config.port = port;
  obs::HttpExposition server(http_config);
  server.set_health_check([&system] {
    return std::make_pair(system.queue().alive(),
                          std::string("work queue shut down"));
  });
  server.set_ready_check([&system] {
    if (!system.queue().alive()) {
      return std::make_pair(false, std::string("work queue shut down"));
    }
    if (system.queue().live_workers() == 0) {
      return std::make_pair(false, std::string("no live workers"));
    }
    if (system.queue().pending() > 10'000) {
      return std::make_pair(false, std::string("backlog too deep"));
    }
    return std::make_pair(true, std::string());
  });
  server.set_varz("example", "live_system");

  obs::TimeSeriesConfig sampler_config;
  sampler_config.interval_s = 0.025;
  sampler_config.capacity = 4096;
  sampler_config.sample_proc_stats = true;  // proc.* gauges in every sample
  sampler_config.sample_cost_tree = true;   // cost.* gauges beside them
  obs::TimeSeriesSampler sampler(&obs::MetricsRegistry::global(),
                                 sampler_config);
  server.set_sampler(&sampler);

  if (!server.start()) {
    std::fprintf(stderr, "failed to bind telemetry endpoint on port %d\n",
                 port);
    return 1;
  }
  sampler.start();
  std::printf("telemetry live: curl localhost:%d/metrics   (also /healthz "
              "/readyz /varz /snapshot.json /trace.json /claims.json "
              "/timeseries.csv)\n",
              server.port());
  std::printf("profiling live: curl 'localhost:%d/profile/cpu?seconds=1' "
              "| curl localhost:%d/cost.json\n\n",
              server.port(), server.port());

  // --profile-hz: keep the sampling profiler armed across the whole run
  // (the /profile/cpu endpoint piggybacks on it for its windows).
  bool profiling = false;
  if (profile_hz > 0) {
    obs::CpuProfiler::register_current_thread();
    obs::CpuProfilerConfig prof_config;
    prof_config.hz = profile_hz;
    std::string prof_error;
    profiling = obs::CpuProfiler::global().start(prof_config, &prof_error);
    if (profiling) {
      std::printf("continuous profiler armed at %d Hz\n\n", profile_hz);
    } else {
      std::fprintf(stderr, "profiler unavailable: %s\n\n",
                   prof_error.c_str());
    }
  }

  EstimateMatrix estimates(
      data.num_claims(),
      std::vector<std::int8_t>(data.intervals(), kNoEstimate));

  // The simulated crawler feed is deterministic, so after a recovery the
  // reports of already-decided intervals are skipped, not re-ingested —
  // the engine already holds their effects (snapshot + WAL replay).
  const auto& reports = data.reports();
  std::size_t next = 0;
  while (next < reports.size() &&
         reports[next].time_ms < static_cast<TimestampMs>(first_interval) *
                                     data.interval_ms()) {
    ++next;
  }
  for (IntervalIndex k = first_interval; k < data.intervals(); ++k) {
    const TimestampMs end =
        static_cast<TimestampMs>(k + 1) * data.interval_ms();
    while (next < reports.size() && reports[next].time_ms < end) {
      system.ingest(reports[next]);
      ++next;
    }
    system.end_interval(k);
    if (pace_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
    }
    sampler.sample_now();  // one deterministic sample per closed interval
    for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
      estimates[u][k] = system.estimate(ClaimId{u});
    }

    if ((k + 1) % 20 == 0) {
      const auto m = system.metrics();
      int live_true = 0;
      int live_false = 0;
      for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
        const auto estimate = system.estimate(ClaimId{u});
        live_true += estimate == 1;
        live_false += estimate == 0;
      }
      std::printf(
          "[interval %3d] ingested=%llu tasks=%llu hit-rate=%.2f "
          "workers=%zu | live verdicts: %d true / %d false\n",
          k + 1, static_cast<unsigned long long>(m.reports_ingested),
          static_cast<unsigned long long>(m.tasks_completed), m.hit_rate(),
          m.current_workers, live_true, live_false);
    }
  }

  // Scrape our own endpoint mid-flight, the way an external Prometheus
  // would, and check the series the paper's Fig. 6 analysis needs.
  obs::HttpGetResult scrape;
  if (obs::http_get("127.0.0.1", server.port(), "/metrics", &scrape) &&
      scrape.status == 200) {
    const bool has_wq = scrape.body.find("wq_") != std::string::npos;
    const bool has_dtm = scrape.body.find("dtm_") != std::string::npos;
    const bool has_staleness =
        scrape.body.find("stream_decision_staleness_s") != std::string::npos;
    std::printf("\nself-scrape of /metrics: %zu bytes | wq.*: %s | dtm.*: "
                "%s | stream.decision_staleness_s: %s\n",
                scrape.body.size(), has_wq ? "yes" : "MISSING",
                has_dtm ? "yes" : "MISSING",
                has_staleness ? "yes" : "MISSING");
  } else {
    std::printf("\nself-scrape of /metrics FAILED\n");
  }

  // Point at one live causal chain and the decision-provenance ring, so
  // the operator can replay a concrete decision's lineage by hand.
  for (const auto& span : obs::TraceRecorder::global().snapshot()) {
    if (span.phase == obs::SpanPhase::kIngest && span.traced()) {
      std::printf(
          "causal chains live: curl 'localhost:%d/trace.json?trace_id=%s' "
          "| provenance: curl 'localhost:%d/claims.json?claim=%s'\n",
          server.port(),
          obs::trace_id_hex(span.trace_hi, span.trace_lo).c_str(),
          server.port(), span.attr("claim").c_str());
      break;
    }
  }

  // Persist the retained metric history for offline plotting (the Fig. 6
  // shape: hit rate, pool size and task rates over time).
  const char* csv_path = "live_system_timeseries.csv";
  if (sampler.dump_csv(csv_path)) {
    std::printf("wrote %zu sampler rows to %s\n", sampler.size(), csv_path);
  }

  EvalOptions eval;
  eval.window_ms = data.interval_ms();
  const auto cm = evaluate(data, estimates, eval);
  const auto m = system.metrics();
  const auto slo = system.slo().stats();
  const auto dtm_stats = system.dtm().deadline_stats();
  std::printf("\nfinal: %s | deadline hit rate %.2f | %llu task failures | "
              "pool ended at %zu workers\n",
              cm.summary().c_str(), m.hit_rate(),
              static_cast<unsigned long long>(m.task_failures),
              m.current_workers);
  std::printf("SLO: %llu hits / %llu misses (ratio %.3f) | DTM internal: "
              "%llu/%llu — %s\n",
              static_cast<unsigned long long>(slo.hits),
              static_cast<unsigned long long>(slo.misses), slo.hit_ratio(),
              static_cast<unsigned long long>(dtm_stats.hits),
              static_cast<unsigned long long>(dtm_stats.misses),
              slo.hits == dtm_stats.hits && slo.misses == dtm_stats.misses
                  ? "in agreement"
                  : "DISAGREE");

  if (linger_s > 0) {
    std::printf("\nserving for another %d s — curl localhost:%d/metrics\n",
                linger_s, server.port());
    std::this_thread::sleep_for(std::chrono::seconds(linger_s));
  }
  if (profiling) {
    obs::CpuProfiler::global().stop();
    const std::string folded = obs::CpuProfiler::global().collect_folded();
    const char* folded_path = "live_system_profile.folded";
    std::ofstream(folded_path) << folded;
    std::printf("profiler: %llu samples (%llu dropped) -> %s "
                "(feed to flamegraph.pl)\n",
                static_cast<unsigned long long>(
                    obs::CpuProfiler::global().samples_captured()),
                static_cast<unsigned long long>(
                    obs::CpuProfiler::global().samples_dropped()),
                folded_path);
  }
  sampler.stop();
  server.stop();
  return 0;
}
