// live_system: the complete Figure-2 runtime (SstdSystem) fed by a
// simulated crawler, with the PID control loop live. Prints a periodic
// operations view — estimates in flight, deadline hit rate, pool size —
// the way an operator would watch the real deployment.
//
//   $ ./live_system
#include <cstdio>

#include "core/metrics.h"
#include "sstd/system.h"
#include "trace/generator.h"

using namespace sstd;

int main() {
  auto config = trace::tiny(trace::boston_bombing(), 80'000, 32);
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();
  std::printf("crawler feed ready: %zu reports over %d intervals\n\n",
              data.num_reports(), data.intervals());

  SstdSystem::Config system_config;
  system_config.workers = 2;  // deliberately underprovisioned at start
  system_config.num_jobs = 8;
  system_config.interval_deadline_s = 0.02;
  system_config.dtm.max_workers = 8;
  SstdSystem system(system_config, data.interval_ms());

  EstimateMatrix estimates(
      data.num_claims(),
      std::vector<std::int8_t>(data.intervals(), kNoEstimate));

  const auto& reports = data.reports();
  std::size_t next = 0;
  for (IntervalIndex k = 0; k < data.intervals(); ++k) {
    const TimestampMs end =
        static_cast<TimestampMs>(k + 1) * data.interval_ms();
    while (next < reports.size() && reports[next].time_ms < end) {
      system.ingest(reports[next]);
      ++next;
    }
    system.end_interval(k);
    for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
      estimates[u][k] = system.estimate(ClaimId{u});
    }

    if ((k + 1) % 20 == 0) {
      const auto m = system.metrics();
      int live_true = 0;
      int live_false = 0;
      for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
        const auto estimate = system.estimate(ClaimId{u});
        live_true += estimate == 1;
        live_false += estimate == 0;
      }
      std::printf(
          "[interval %3d] ingested=%llu tasks=%llu hit-rate=%.2f "
          "workers=%zu | live verdicts: %d true / %d false\n",
          k + 1, static_cast<unsigned long long>(m.reports_ingested),
          static_cast<unsigned long long>(m.tasks_completed), m.hit_rate(),
          m.current_workers, live_true, live_false);
    }
  }

  EvalOptions eval;
  eval.window_ms = data.interval_ms();
  const auto cm = evaluate(data, estimates, eval);
  const auto m = system.metrics();
  std::printf("\nfinal: %s | deadline hit rate %.2f | %llu task failures | "
              "pool ended at %zu workers\n",
              cm.summary().c_str(), m.hit_rate(),
              static_cast<unsigned long long>(m.task_failures),
              m.current_workers);
  return 0;
}
