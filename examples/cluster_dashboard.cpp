// Cluster dashboard: the distributed side of SSTD.
//
// Part 1 runs the real threaded Work Queue: per-claim TD tasks execute on
// an elastic worker pool and the dashboard prints task timing statistics.
// Part 2 runs the discrete-event cluster simulation with the PID-driven
// Dynamic Task Manager and shows deadline hit rates with and without
// feedback control.
//
//   $ ./cluster_dashboard
#include <cstdio>
#include <sstream>
#include <string>

#include "core/metrics.h"
#include "obs/http_exposition.h"
#include "sstd/distributed.h"
#include "trace/generator.h"
#include "util/stats.h"
#include "util/table.h"

using namespace sstd;

namespace {

// Print the exposition lines an operator would care about from a real
// scrape — the dashboard polls the endpoint over the socket rather than
// reading the registry directly, so what it shows is what Prometheus sees.
void print_scrape_lines(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("wq_tasks", 0) == 0 || line.rfind("wq_retries", 0) == 0 ||
        line.rfind("wq_workers", 0) == 0 ||
        line.rfind("stream_decision_staleness_s_count", 0) == 0) {
      std::printf("    %s\n", line.c_str());
    }
  }
}

}  // namespace

int main() {
  auto config = trace::tiny(trace::boston_bombing(), 60'000, 48);
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();
  std::printf("trace: %zu reports, %u claims\n\n", data.num_reports(),
              data.num_claims());

  // Serve the global registry while the engine runs; the dashboard then
  // scrapes its own endpoint exactly like an external poller would.
  obs::HttpExposition server;
  if (!server.start()) {
    std::fprintf(stderr, "warning: telemetry endpoint failed to bind\n");
  }

  // ---- Part 1: threaded Work Queue execution -------------------------
  DistributedConfig dist_config;
  dist_config.workers = 4;
  DistributedSstd engine(dist_config);
  const EstimateMatrix estimates = engine.run(data);

  if (server.running()) {
    obs::HttpGetResult scrape;
    if (obs::http_get("127.0.0.1", server.port(), "/metrics", &scrape) &&
        scrape.status == 200) {
      std::printf("live scrape of 127.0.0.1:%d/metrics (%zu bytes):\n",
                  server.port(), scrape.body.size());
      print_scrape_lines(scrape.body);
      std::printf("\n");
    }
  }

  EvalOptions eval;
  eval.window_ms = data.interval_ms();
  const ConfusionMatrix cm = evaluate(data, estimates, eval);
  std::printf("distributed SSTD (4 workers): %s\n", cm.summary().c_str());

  RunningStats wait;
  RunningStats exec;
  std::vector<int> per_worker(16, 0);
  for (const auto& report : engine.last_reports()) {
    wait.add(report.queue_wait_s() * 1e3);
    exec.add(report.execution_s() * 1e3);
    if (report.worker < per_worker.size()) ++per_worker[report.worker];
  }
  std::printf("tasks: %zu | queue wait %.2f ms avg | exec %.2f ms avg "
              "(max %.2f)\n",
              engine.last_reports().size(), wait.mean(), exec.mean(),
              exec.max());
  std::printf("per-worker task counts:");
  for (std::size_t w = 0; w < 4; ++w) std::printf(" w%zu=%d", w, per_worker[w]);
  std::printf("\n\n");

  // ---- Part 2: simulated cluster with PID feedback control -----------
  const auto per_job = partition_traffic(data, 8);
  TextTable table("Deadline hit rate on the simulated cluster");
  table.set_columns({"Deadline (s)", "SSTD + PID DTM", "Fixed allocation",
                     "Centralized"});

  const auto traffic = data.traffic_profile();
  std::vector<std::uint64_t> volumes(traffic.begin(), traffic.end());

  for (double deadline : {0.5, 1.0, 2.0, 4.0}) {
    DeadlineExperimentConfig experiment;
    experiment.deadline_s = deadline;
    experiment.interval_arrival_s = 2.0;
    experiment.initial_workers = 4;
    experiment.sim.theta1 = 2e-3;
    experiment.sim.comm_per_unit_s = 2e-4;

    experiment.use_pid_control = true;
    const auto pid = run_deadline_experiment(per_job, experiment);
    experiment.use_pid_control = false;
    const auto fixed = run_deadline_experiment(per_job, experiment);
    const auto central = centralized_deadline_baseline(
        volumes, deadline, experiment.interval_arrival_s, 2.8e-3);

    table.add_row({TextTable::num(deadline, 1),
                   TextTable::num(pid.hit_rate),
                   TextTable::num(fixed.hit_rate),
                   TextTable::num(central.hit_rate)});
  }
  table.print();
  return 0;
}
