// Telemetry quick-start (DESIGN.md §5b): run a short chaos-enabled Work
// Queue workload, print the Prometheus snapshot of the global registry,
// and dump the task spans as Chrome trace_event JSON
// (chrome://tracing or https://ui.perfetto.dev load the file directly).
//
// With --serve, the same metrics are additionally exposed live over HTTP
// (DESIGN.md §5c): the demo starts the exposition server, scrapes its own
// /metrics and /healthz over the socket, stops it, then runs a second
// serve cycle to show start/stop leaves nothing behind.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "dist/fault_plan.h"
#include "dist/retry_policy.h"
#include "dist/work_queue.h"
#include "obs/export.h"
#include "obs/http_exposition.h"
#include "obs/log_bridge.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

// One serve cycle: start on an ephemeral port, self-scrape /metrics and
// /healthz, stop. Returns true when every step worked.
bool serve_cycle(int round) {
  using namespace sstd;
  obs::HttpExposition server;
  if (!server.start()) {
    std::fprintf(stderr, "serve cycle %d: bind failed\n", round);
    return false;
  }
  obs::HttpGetResult metrics;
  obs::HttpGetResult health;
  const bool ok =
      obs::http_get("127.0.0.1", server.port(), "/metrics", &metrics) &&
      metrics.status == 200 &&
      metrics.body.find("wq_") != std::string::npos &&
      obs::http_get("127.0.0.1", server.port(), "/healthz", &health) &&
      health.status == 200;
  std::printf("serve cycle %d: port %d, /metrics %d (%zu bytes), "
              "/healthz %d, %llu requests served\n",
              round, server.port(), metrics.status, metrics.body.size(),
              health.status,
              static_cast<unsigned long long>(server.requests_served()));
  server.stop();
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sstd;

  const bool serve = argc > 1 && std::strcmp(argv[1], "--serve") == 0;

  // WARN/ERROR log lines feed log.* error counters.
  obs::install_log_metrics_bridge();

  // A hostile little cluster: transient attempt failures, one worker
  // crash-and-recover, one permanent loss, one deterministic straggler.
  dist::RetryPolicy retry;
  retry.base_backoff_s = 0.001;
  retry.max_backoff_s = 0.01;
  dist::FastAbortConfig fast_abort;
  fast_abort.enabled = true;
  fast_abort.min_runtime_s = 0.05;
  dist::WorkQueue queue(3, retry, fast_abort);

  dist::FaultPlan plan(2026);
  plan.fail_tasks(0.30);
  plan.crash_worker(0, 0.03, /*recover_after_s=*/0.05);
  plan.crash_worker(1, 0.06);
  plan.delay_task(7, 5.0);
  queue.install_fault_plan(plan);

  std::atomic<int> executed{0};
  for (int i = 0; i < 32; ++i) {
    dist::Task task;
    task.id = static_cast<dist::TaskId>(i);
    task.max_retries = 10;
    task.work = [&executed] {
      executed.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    queue.submit(std::move(task), 0.0);
  }
  queue.wait_all();

  const auto stats = queue.stats();
  std::printf("completed %llu tasks (%d executions, %llu retries, "
              "%llu fast-aborts, %llu evictions)\n\n",
              static_cast<unsigned long long>(queue.completed()),
              executed.load(),
              static_cast<unsigned long long>(stats.retries),
              static_cast<unsigned long long>(stats.fast_aborts),
              static_cast<unsigned long long>(stats.evictions));

  // 1. Prometheus text exposition of everything the runtime counted.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  std::printf("%s\n", obs::to_prometheus(snap).c_str());

  // 2. Chrome trace of every task attempt (one row per worker).
  const auto spans = obs::TraceRecorder::global().snapshot();
  const char* trace_path = "telemetry_demo_trace.json";
  if (obs::write_text_file(trace_path, obs::to_chrome_trace(spans))) {
    std::printf("wrote %zu spans to %s — open it in chrome://tracing\n",
                spans.size(), trace_path);
  }

  // 3. Optional live exposition: two full serve cycles in one process
  //    prove start/serve/stop is clean and restartable.
  if (serve) {
    std::printf("\n");
    const bool first = serve_cycle(1);
    const bool second = serve_cycle(2);
    if (!first || !second) {
      std::fprintf(stderr, "live exposition FAILED\n");
      return 1;
    }
    std::printf("live exposition ok: served and shut down cleanly twice\n");
  }
  return 0;
}
