// Quickstart: the smallest end-to-end SSTD run.
//
// Builds a tiny hand-made social-sensing stream about one claim whose
// truth flips halfway through ("the suspect is in the library"), runs the
// HMM-based truth discovery, and prints the decoded truth timeline next to
// the ground truth.
//
//   $ ./quickstart
#include <cstdio>

#include "core/dataset.h"
#include "core/metrics.h"
#include "sstd/batch.h"
#include "util/rng.h"

using namespace sstd;

int main() {
  // One claim observed over 20 intervals of 1 second each by 8 sources.
  const IntervalIndex kIntervals = 20;
  Dataset data("quickstart", /*num_sources=*/8, /*num_claims=*/1,
               kIntervals, /*interval_ms=*/1000);

  // Ground truth: TRUE for the first half, FALSE afterwards.
  TruthSeries truth(kIntervals);
  for (IntervalIndex k = 0; k < kIntervals; ++k) truth[k] = k < 10;
  data.set_ground_truth(ClaimId{0}, truth);

  // Sources report what they believe each second; they are 80% accurate,
  // and some hedge ("possibly...") which lowers their contribution.
  Rng rng(7);
  for (IntervalIndex k = 0; k < kIntervals; ++k) {
    for (std::uint32_t s = 0; s < 8; ++s) {
      Report report;
      report.source = SourceId{s};
      report.claim = ClaimId{0};
      report.time_ms = k * 1000 + 100 + s * 20;
      const bool correct = rng.bernoulli(0.8);
      report.attitude = (correct == (truth[k] != 0)) ? 1 : -1;
      report.uncertainty = rng.bernoulli(0.25) ? 0.7 : 0.1;
      report.independence = 1.0;
      data.add_report(report);
    }
  }
  data.finalize();

  // Run SSTD: per-claim ACS sequence -> Baum-Welch -> Viterbi decode.
  SstdBatch sstd;
  const EstimateMatrix estimates = sstd.run(data);

  std::printf("interval : ");
  for (IntervalIndex k = 0; k < kIntervals; ++k) std::printf("%2d ", k);
  std::printf("\ntruth    : ");
  for (IntervalIndex k = 0; k < kIntervals; ++k) {
    std::printf(" %c ", truth[k] ? 'T' : 'F');
  }
  std::printf("\nSSTD     : ");
  for (IntervalIndex k = 0; k < kIntervals; ++k) {
    std::printf(" %c ", estimates[0][k] == 1 ? 'T' : 'F');
  }
  std::printf("\n\n");

  const ConfusionMatrix cm = evaluate(data, estimates);
  std::printf("scored %llu (claim, interval) cells: %s\n",
              static_cast<unsigned long long>(cm.total()),
              cm.summary().c_str());
  return 0;
}
