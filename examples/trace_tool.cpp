// trace_tool: command-line utility for working with social-sensing traces.
//
//   trace_tool generate <boston|paris|football> <out.sstd> [reports] [claims]
//   trace_tool scaffold <boston|paris|football> <out.scenario>
//   trace_tool generate-from <in.scenario> <out.sstd>
//   trace_tool stats    <trace.sstd>
//   trace_tool export   <trace.sstd> <out.csv>
//   trace_tool eval     <trace.sstd>
//   trace_tool audit    <trace.sstd> [k]
//
// `generate` writes a synthetic trace in the binary dataset format;
// `stats` prints Table-II-style statistics; `export` converts to CSV
// (+ .truth.csv sidecar); `eval` runs SSTD and every baseline on the
// trace and prints the accuracy table.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "baselines/baselines.h"
#include "core/metrics.h"
#include "core/serialize.h"
#include "sstd/analytics.h"
#include "sstd/batch.h"
#include "trace/generator.h"
#include "trace/scenario_file.h"
#include "util/table.h"

using namespace sstd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool generate <boston|paris|football> <out.sstd> "
               "[reports] [claims]\n"
               "  trace_tool scaffold <boston|paris|football> "
               "<out.scenario>\n"
               "  trace_tool generate-from <in.scenario> <out.sstd>\n"
               "  trace_tool stats  <trace.sstd>\n"
               "  trace_tool export <trace.sstd> <out.csv>\n"
               "  trace_tool eval   <trace.sstd>\n"
               "  trace_tool audit  <trace.sstd> [k]\n");
  return 2;
}

trace::ScenarioConfig scenario_by_name(const char* name) {
  if (std::strcmp(name, "boston") == 0) return trace::boston_bombing();
  if (std::strcmp(name, "paris") == 0) return trace::paris_shooting();
  if (std::strcmp(name, "football") == 0) return trace::college_football();
  throw std::invalid_argument(std::string("unknown scenario: ") + name);
}

int cmd_generate(int argc, char** argv) {
  if (argc < 4) return usage();
  auto config = scenario_by_name(argv[2]);
  if (argc > 4) {
    config = config.scaled_to(std::strtoull(argv[4], nullptr, 10));
  }
  if (argc > 5) {
    config.num_claims =
        static_cast<std::uint32_t>(std::strtoul(argv[5], nullptr, 10));
  }
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();
  save_dataset(data, argv[3]);
  std::printf("wrote %zu reports (%u claims, %u distinct sources) to %s\n",
              data.num_reports(), data.num_claims(),
              data.distinct_reporting_sources(), argv[3]);
  return 0;
}

int cmd_scaffold(int argc, char** argv) {
  if (argc < 4) return usage();
  trace::save_scenario_file(scenario_by_name(argv[2]), argv[3]);
  std::printf("wrote scenario template to %s (edit, then "
              "`trace_tool generate-from %s <out.sstd>`)\n",
              argv[3], argv[3]);
  return 0;
}

int cmd_generate_from(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto config = trace::load_scenario_file(argv[2]);
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();
  save_dataset(data, argv[3]);
  std::printf("wrote %zu reports (%u claims, %u distinct sources) to %s\n",
              data.num_reports(), data.num_claims(),
              data.distinct_reporting_sources(), argv[3]);
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc < 3) return usage();
  const Dataset data = load_dataset(argv[2]);
  std::printf("name:      %s\n", data.name().c_str());
  std::printf("reports:   %zu\n", data.num_reports());
  std::printf("claims:    %u\n", data.num_claims());
  std::printf("sources:   %u distinct (id space %u)\n",
              data.distinct_reporting_sources(), data.num_sources());
  std::printf("intervals: %d x %lld ms\n", data.intervals(),
              static_cast<long long>(data.interval_ms()));
  std::printf("labeled:   %s\n", data.has_ground_truth() ? "yes" : "no");
  const auto profile = data.traffic_profile();
  std::uint64_t peak = 0;
  std::uint64_t total = 0;
  for (auto count : profile) {
    peak = std::max<std::uint64_t>(peak, count);
    total += count;
  }
  if (!profile.empty() && total > 0) {
    std::printf("traffic:   peak/mean = %.1fx\n",
                static_cast<double>(peak) * profile.size() /
                    static_cast<double>(total));
  }
  return 0;
}

int cmd_export(int argc, char** argv) {
  if (argc < 4) return usage();
  const Dataset data = load_dataset(argv[2]);
  export_dataset_csv(data, argv[3]);
  std::printf("exported %zu reports to %s (+ .truth.csv)\n",
              data.num_reports(), argv[3]);
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 3) return usage();
  const Dataset data = load_dataset(argv[2]);
  if (!data.has_ground_truth()) {
    std::fprintf(stderr, "eval: trace has no ground-truth labels\n");
    return 1;
  }
  EvalOptions eval;
  eval.window_ms = data.interval_ms();

  TextTable table("Truth discovery on " + data.name());
  table.set_columns({"Method", "Accuracy", "Precision", "Recall", "F1"});
  auto add = [&](BatchTruthDiscovery& scheme) {
    const auto cm = evaluate_scheme(scheme, data, eval);
    table.add_row({scheme.name(), TextTable::num(cm.accuracy()),
                   TextTable::num(cm.precision()),
                   TextTable::num(cm.recall()), TextTable::num(cm.f1())});
  };
  SstdBatch sstd;
  add(sstd);
  for (auto& baseline : make_paper_baselines()) add(*baseline);
  table.print();
  return 0;
}

int cmd_audit(int argc, char** argv) {
  if (argc < 3) return usage();
  const Dataset data = load_dataset(argv[2]);
  const std::size_t k =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 10;

  SstdBatch sstd;
  const EstimateMatrix estimates = sstd.run(data);
  const auto worst = least_reliable_sources(data, estimates, k, 4);

  TextTable table("Least reliable sources (vs SSTD estimates)");
  table.set_columns({"Source", "Reports", "Agreement", "Mean independence",
                     "Claims"});
  for (const auto& audit : worst) {
    table.add_row({std::to_string(audit.source.value),
                   std::to_string(audit.reports),
                   TextTable::num(audit.agreement_rate),
                   TextTable::num(audit.mean_independence),
                   std::to_string(audit.claims_touched)});
  }
  table.print();

  // Most controversial claims.
  auto controversy = claim_controversy(data, estimates);
  std::sort(controversy.begin(), controversy.end(),
            [](const ClaimControversy& a, const ClaimControversy& b) {
              return a.controversy > b.controversy;
            });
  TextTable claims("Most contested claims");
  claims.set_columns({"Claim", "Reports", "Controversy", "Est. flip rate"});
  for (std::size_t i = 0; i < std::min<std::size_t>(k, controversy.size());
       ++i) {
    const auto& entry = controversy[i];
    claims.add_row({std::to_string(entry.claim.value),
                    std::to_string(entry.reports),
                    TextTable::num(entry.controversy),
                    TextTable::num(entry.estimate_flip_rate)});
  }
  claims.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "generate") == 0) return cmd_generate(argc, argv);
    if (std::strcmp(argv[1], "scaffold") == 0) return cmd_scaffold(argc, argv);
    if (std::strcmp(argv[1], "generate-from") == 0) {
      return cmd_generate_from(argc, argv);
    }
    if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(argc, argv);
    if (std::strcmp(argv[1], "export") == 0) return cmd_export(argc, argv);
    if (std::strcmp(argv[1], "eval") == 0) return cmd_eval(argc, argv);
    if (std::strcmp(argv[1], "audit") == 0) return cmd_audit(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_tool: %s\n", error.what());
    return 1;
  }
  return usage();
}
