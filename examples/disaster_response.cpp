// Disaster response scenario: a Boston-Bombing-like synthetic trace with
// evolving truths, retweet cascades and coordinated misinformation bursts.
// Runs SSTD against the strongest dynamic baseline (DynaTD) and prints a
// per-claim truth timeline for the most contested claim.
//
//   $ ./disaster_response [reports] [claims]
#include <cstdio>
#include <cstdlib>

#include "baselines/dynatd.h"
#include "core/metrics.h"
#include "sstd/analytics.h"
#include "sstd/batch.h"
#include "trace/generator.h"
#include "util/table.h"

using namespace sstd;

int main(int argc, char** argv) {
  const std::uint64_t reports = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                         : 80'000;
  const std::uint32_t claims =
      argc > 2 ? static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10))
               : 40;

  auto config = trace::tiny(trace::boston_bombing(), reports, claims);
  std::printf("generating %s: ~%llu reports, %u sources, %u claims...\n",
              config.name.c_str(),
              static_cast<unsigned long long>(config.total_reports),
              config.num_sources, config.num_claims);
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();

  const auto stats = trace::TraceGenerator::compute_stats(data, config);
  std::printf("trace ready: %llu reports from %llu distinct sources, "
              "%.1f truth flips/claim, peak/mean traffic %.1fx\n\n",
              static_cast<unsigned long long>(stats.num_reports),
              static_cast<unsigned long long>(stats.num_sources),
              stats.truth_flips_per_claim, stats.peak_to_mean_traffic);

  EvalOptions eval;
  eval.window_ms = data.interval_ms();

  SstdBatch sstd;
  const EstimateMatrix sstd_estimates = sstd.run(data);
  const ConfusionMatrix sstd_cm = evaluate(data, sstd_estimates, eval);

  DynaTdBatch dynatd;
  const ConfusionMatrix dynatd_cm = evaluate_scheme(dynatd, data, eval);

  TextTable table("Truth discovery on the disaster trace");
  table.set_columns({"Method", "Accuracy", "Precision", "Recall", "F1"});
  table.add_row({"SSTD", TextTable::num(sstd_cm.accuracy()),
                 TextTable::num(sstd_cm.precision()),
                 TextTable::num(sstd_cm.recall()),
                 TextTable::num(sstd_cm.f1())});
  table.add_row({"DynaTD", TextTable::num(dynatd_cm.accuracy()),
                 TextTable::num(dynatd_cm.precision()),
                 TextTable::num(dynatd_cm.recall()),
                 TextTable::num(dynatd_cm.f1())});
  table.print();

  // Show the timeline of the claim whose truth flipped the most.
  std::uint32_t contested = 0;
  int most_flips = -1;
  for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
    const auto& series = data.ground_truth(ClaimId{u});
    int flips = 0;
    for (std::size_t k = 1; k < series.size(); ++k) {
      flips += series[k] != series[k - 1];
    }
    if (flips > most_flips) {
      most_flips = flips;
      contested = u;
    }
  }
  const auto& truth = data.ground_truth(ClaimId{contested});
  std::printf("\nmost contested claim #%u (%d flips), one char per "
              "interval (T=true F=false .=agreement):\n",
              contested, most_flips);
  std::printf("truth: ");
  for (IntervalIndex k = 0; k < data.intervals(); ++k) {
    std::printf("%c", truth[k] ? 'T' : 'F');
  }
  std::printf("\nSSTD : ");
  for (IntervalIndex k = 0; k < data.intervals(); ++k) {
    const bool match = (sstd_estimates[contested][k] == 1) == (truth[k] != 0);
    std::printf("%c", match ? '.' : (sstd_estimates[contested][k] == 1 ? 'T' : 'F'));
  }
  std::printf("\n");

  // Quality over the event timeline (digits = accuracy decile, '-' = no
  // active claims in the interval).
  const auto timeline = accuracy_over_time(data, sstd_estimates, eval);
  std::printf("\nper-interval accuracy (0-9 = deciles):\n       ");
  for (double a : timeline) {
    if (a < 0.0) {
      std::printf("-");
    } else {
      std::printf("%d", std::min(9, static_cast<int>(a * 10.0)));
    }
  }
  std::printf("\n");

  // Who spread the most misinformation?
  const auto spreaders = least_reliable_sources(data, sstd_estimates, 5, 5);
  std::printf("\ntop suspected misinformation spreaders "
              "(agreement with estimates | mean independence):\n");
  for (const auto& audit : spreaders) {
    std::printf("  source %-8u %2u reports  %.2f | %.2f\n",
                audit.source.value, audit.reports, audit.agreement_rate,
                audit.mean_independence);
  }
  return 0;
}
