// Live sports tracking: streams a College-Football-like trace through the
// *streaming* SSTD engine interval by interval — the real-time mode a
// deployment would run — and reports estimate quality plus how quickly
// each truth flip (score change) was detected.
//
//   $ ./sports_tracker
#include <cstdio>
#include <vector>

#include "core/metrics.h"
#include "sstd/streaming.h"
#include "trace/generator.h"

using namespace sstd;

int main() {
  auto config = trace::tiny(trace::college_football(), 50'000, 24);
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();
  std::printf("streaming %zu reports over %d intervals (%u claims)...\n",
              data.num_reports(), data.intervals(), data.num_claims());

  SstdConfig sstd_config;
  sstd_config.refit_every = 20;
  SstdStreaming engine(sstd_config, data.interval_ms());

  // Stream manually so we can observe live estimates at each boundary.
  EstimateMatrix estimates(
      data.num_claims(),
      std::vector<std::int8_t>(data.intervals(), kNoEstimate));
  const auto& reports = data.reports();
  std::size_t next = 0;
  for (IntervalIndex k = 0; k < data.intervals(); ++k) {
    const TimestampMs end =
        static_cast<TimestampMs>(k + 1) * data.interval_ms();
    while (next < reports.size() && reports[next].time_ms < end) {
      engine.offer(reports[next]);
      ++next;
    }
    engine.end_interval(k);
    for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
      estimates[u][k] = engine.current_estimate(ClaimId{u});
    }
  }
  std::printf("done: %zu claim pipelines, %llu HMM refits\n\n",
              engine.active_claims(),
              static_cast<unsigned long long>(engine.refit_count()));

  EvalOptions eval;
  eval.window_ms = data.interval_ms();
  const ConfusionMatrix cm = evaluate(data, estimates, eval);
  std::printf("streaming quality: %s\n\n", cm.summary().c_str());

  // Flip-detection latency: for every ground-truth flip, how many
  // intervals until the streaming estimate agreed with the new value?
  std::vector<int> latencies;
  int undetected = 0;
  for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
    const auto& truth = data.ground_truth(ClaimId{u});
    for (IntervalIndex k = 1; k < data.intervals(); ++k) {
      if (truth[k] == truth[k - 1]) continue;
      int latency = -1;
      for (IntervalIndex j = k; j < data.intervals(); ++j) {
        if (truth[j] != truth[k]) break;  // truth flipped again
        if (estimates[u][j] == truth[k]) {
          latency = j - k;
          break;
        }
      }
      if (latency >= 0) {
        latencies.push_back(latency);
      } else {
        ++undetected;
      }
    }
  }
  if (!latencies.empty()) {
    double mean = 0.0;
    int max = 0;
    for (int latency : latencies) {
      mean += latency;
      max = std::max(max, latency);
    }
    mean /= static_cast<double>(latencies.size());
    std::printf("flip detection: %zu flips detected (%.1f intervals mean "
                "latency, %d max), %d flips reverted before detection\n",
                latencies.size(), mean, max, undetected);
  }
  return 0;
}
