// Casualty tracker: multi-valued truth discovery (the extension module).
//
// The paper's own motivating example — "the number of casualties during a
// natural disaster" — is not binary. This example tracks a 5-bucket
// casualty count through a noisy report stream with the V-state SSTD
// extension, prints the decoded timeline against the truth, and shows the
// posterior distribution at a contested moment.
//
//   $ ./casualty_tracker
#include <cstdio>
#include <vector>

#include "sstd/multivalue.h"
#include "util/rng.h"

using namespace sstd;

int main() {
  // Buckets: 0 = "none reported", 1 = "1-10", 2 = "11-50", 3 = "51-100",
  // 4 = "100+". Truth escalates, then is revised downward (a common
  // real-event pattern: early casualty figures are overestimates).
  const char* kBuckets[] = {"none", "1-10", "11-50", "51-100", "100+"};
  const int kIntervals = 40;
  std::vector<std::uint8_t> truth(kIntervals);
  for (int k = 0; k < kIntervals; ++k) {
    truth[k] = k < 6 ? 0 : (k < 14 ? 1 : (k < 24 ? 3 : 2));
  }

  // Reports: 65% name the current bucket, the rest scatter near it (off
  // by one bucket, as real confusion would be).
  Rng rng(42);
  std::vector<ValueReport> reports;
  for (int k = 0; k < kIntervals; ++k) {
    const int volume = 4 + static_cast<int>(rng.below(6));
    for (int s = 0; s < volume; ++s) {
      ValueReport report;
      report.source = SourceId{static_cast<std::uint32_t>(rng.below(200))};
      report.claim = ClaimId{0};
      report.time_ms = k * 1000 + 50 + s * 20;
      int value = truth[k];
      if (!rng.bernoulli(0.65)) {
        value += rng.bernoulli(0.5) ? 1 : -1;
        value = std::clamp(value, 0, 4);
      }
      report.value = static_cast<std::uint8_t>(value);
      report.weight = rng.uniform(0.5, 1.0);
      reports.push_back(report);
    }
  }
  std::printf("%zu reports over %d intervals, 5 casualty buckets\n\n",
              reports.size(), kIntervals);

  MultiValueSstd engine;
  const auto decoded = engine.decode(reports, 5, kIntervals, 1000);
  const auto voted = MultiValueSstd::plurality_vote(reports, 5, kIntervals,
                                                    1000);

  auto render = [&](const char* label, auto value_at) {
    std::printf("%-9s", label);
    for (int k = 0; k < kIntervals; ++k) std::printf("%d", value_at(k));
    std::printf("\n");
  };
  render("truth:   ", [&](int k) { return static_cast<int>(truth[k]); });
  render("SSTD-V:  ", [&](int k) { return static_cast<int>(decoded[k]); });
  render("vote:    ", [&](int k) { return static_cast<int>(voted[k]); });

  int engine_hits = 0;
  int vote_hits = 0;
  for (int k = 0; k < kIntervals; ++k) {
    engine_hits += decoded[k] == truth[k];
    vote_hits += voted[k] == truth[k];
  }
  std::printf("\naccuracy: SSTD-V %d/%d, plurality vote %d/%d\n\n",
              engine_hits, kIntervals, vote_hits, kIntervals);

  // Posterior at the downward revision (interval 24): how sure are we?
  const auto posterior = engine.posterior(reports, 5, kIntervals, 1000);
  std::printf("posterior at the revision point (interval 24):\n");
  for (int v = 0; v < 5; ++v) {
    std::printf("  %-7s %5.1f%%  ", kBuckets[v], 100.0 * posterior[24][v]);
    const int bar = static_cast<int>(posterior[24][v] * 40);
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
  return 0;
}
