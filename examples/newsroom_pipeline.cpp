// Full newsroom pipeline: raw tweets in, truth timelines out.
//
// Exercises every front-end stage the paper describes (§V-A data
// pre-processing): token-level tweets are clustered into claims online
// (Jaccard-variant K-means), scored for attitude / uncertainty (Naive
// Bayes hedge classifier) / independence (retweet & near-duplicate
// detection), and the resulting reports feed the HMM truth discovery.
//
//   $ ./newsroom_pipeline
#include <cstdio>
#include <unordered_map>

#include "core/metrics.h"
#include "sstd/batch.h"
#include "text/pipeline.h"
#include "text/vocab.h"
#include "trace/generator.h"

using namespace sstd;

int main() {
  auto config = trace::tiny(trace::paris_shooting(), 20'000, 8);
  trace::TraceGenerator generator(config);
  const auto tweets = generator.generate_tweets(20'000);
  std::printf("generated %zu raw tweets\n", tweets.size());

  // Front end: tweets -> scored reports with *discovered* claim ids.
  text::TextPipeline pipeline;
  std::vector<Report> reports;
  reports.reserve(tweets.size());
  std::uint32_t max_source = 0;
  for (const auto& tweet : tweets) {
    reports.push_back(pipeline.process(tweet));
    max_source = std::max(max_source, tweet.source.value);
  }
  std::printf("claim extraction discovered %zu clusters\n",
              pipeline.num_discovered_claims());

  // How pure is the clustering vs the latent topics?
  const auto cluster_topic = pipeline.cluster_to_topic();
  std::unordered_map<std::uint32_t, std::uint64_t> correct_per_cluster;
  std::uint64_t aligned = 0;
  for (std::size_t i = 0; i < tweets.size(); ++i) {
    const std::uint32_t cluster = reports[i].claim.value;
    const auto it = cluster_topic.find(cluster);
    if (it != cluster_topic.end() &&
        it->second == tweets[i].latent_claim.value) {
      ++aligned;
    }
  }
  std::printf("cluster->topic majority alignment: %.1f%% of tweets\n\n",
              100.0 * static_cast<double>(aligned) / tweets.size());

  // Attitude / hedge extraction quality against the latent labels.
  std::uint64_t attitude_ok = 0;
  std::uint64_t hedge_ok = 0;
  for (std::size_t i = 0; i < tweets.size(); ++i) {
    attitude_ok += reports[i].attitude == tweets[i].latent_stance;
    hedge_ok += (reports[i].uncertainty > 0.5) == tweets[i].latent_hedged;
  }
  std::printf("attitude extraction accuracy: %.1f%%\n",
              100.0 * static_cast<double>(attitude_ok) / tweets.size());
  std::printf("hedge detection accuracy:     %.1f%%\n\n",
              100.0 * static_cast<double>(hedge_ok) / tweets.size());

  // Back end: remap each report to its cluster's majority latent topic so
  // the generator's ground truth applies, then run SSTD.
  const auto topics = static_cast<std::uint32_t>(
      text::bombing_topics().size());  // generator maps claims mod topics
  trace::TraceGenerator labeled_gen(config);
  const Dataset labeled = labeled_gen.generate();

  Dataset remapped("newsroom", max_source + 1, labeled.num_claims(),
                   labeled.intervals(), labeled.interval_ms());
  for (std::uint32_t u = 0; u < labeled.num_claims(); ++u) {
    remapped.set_ground_truth(ClaimId{u}, labeled.ground_truth(ClaimId{u}));
  }
  std::uint64_t mapped = 0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto it = cluster_topic.find(reports[i].claim.value);
    if (it == cluster_topic.end()) continue;
    Report r = reports[i];
    // latent_claim of the tweet stream is the original claim id space.
    r.claim = tweets[i].latent_claim;
    if (r.claim.value >= remapped.num_claims()) continue;
    remapped.add_report(r);
    ++mapped;
  }
  remapped.finalize();
  std::printf("feeding %llu pipeline-scored reports into SSTD (%u topics)\n",
              static_cast<unsigned long long>(mapped), topics);

  SstdBatch sstd;
  EvalOptions eval;
  eval.window_ms = remapped.interval_ms();
  const ConfusionMatrix cm = evaluate(remapped, sstd.run(remapped), eval);
  std::printf("end-to-end truth discovery from raw text: %s\n",
              cm.summary().c_str());
  return 0;
}
