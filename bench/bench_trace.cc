// Tracing-overhead bench (ISSUE 8, DESIGN.md §5d): what does causal
// tracing cost the streaming runtime? Drives the same SstdSystem workload
// with tracing off, sampled (1%) and full (every report mints a trace,
// every shard task carries attempt/refit/decision spans) and compares
// refit throughput. The acceptance bar is <5% refits/sec overhead with
// tracing enabled.
//
// Results land in bench_results/BENCH_trace_overhead.json with
// build-provenance metadata. `--smoke` runs a scaled-down sweep (< 5 s)
// and self-validates the emitted JSON — wired into ctest under the
// bench_smoke label.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "sstd/system.h"
#include "trace/generator.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace sstd {
namespace {

struct ModePoint {
  double sample_rate = 0.0;
  double wall_s = 0.0;
  std::uint64_t reports = 0;
  std::uint64_t refits = 0;
  std::uint64_t spans_recorded = 0;
  std::uint64_t decisions_recorded = 0;

  double refits_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(refits) / wall_s : 0.0;
  }
};

// One full streaming run of `data` at the given trace sampling rate;
// refit throughput is the metric tracing must not tax.
ModePoint measure(const Dataset& data, double sample_rate) {
  obs::TraceRecorder::global().clear();
  obs::DecisionProvenanceRing::global().clear();

  SstdSystem::Config config;
  config.workers = 4;
  config.num_jobs = 8;
  config.interval_deadline_s = 10.0;
  config.sstd.refit_every = 1;  // refit-dominated: the worst case for tracing
  config.sstd.warmup_intervals = 1;
  config.trace_sample_rate = sample_rate;
  SstdSystem system(config, data.interval_ms());

  // Engine-side refit tally: delta of the global stream.refits counter
  // over the run (the registry outlives bench iterations).
  obs::Counter* refit_counter =
      obs::MetricsRegistry::global().counter("stream.refits");
  const std::uint64_t refits_before = refit_counter->value();

  const auto& reports = data.reports();
  std::size_t next = 0;
  Stopwatch watch;
  for (IntervalIndex k = 0; k < data.intervals(); ++k) {
    const TimestampMs end =
        static_cast<TimestampMs>(k + 1) * data.interval_ms();
    while (next < reports.size() && reports[next].time_ms < end) {
      system.ingest(reports[next]);
      ++next;
    }
    system.end_interval(k);
  }

  ModePoint point;
  point.sample_rate = sample_rate;
  point.wall_s = watch.elapsed_seconds();
  point.reports = system.metrics().reports_ingested;
  point.refits = refit_counter->value() - refits_before;
  point.spans_recorded = obs::TraceRecorder::global().recorded();
  point.decisions_recorded = obs::DecisionProvenanceRing::global().recorded();
  return point;
}

void emit_json(const std::vector<ModePoint>& modes, double overhead_pct,
               const bench::RunProvenance& prov) {
  std::ofstream out(bench::results_path("BENCH_trace_overhead.json"));
  out << "{\n  \"bench\": \"trace_overhead\",\n  \"meta\": "
      << bench::run_metadata_json(prov) << ",\n  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModePoint& m = modes[i];
    out << "    {\"sample_rate\": " << m.sample_rate
        << ", \"wall_s\": " << m.wall_s << ", \"reports\": " << m.reports
        << ", \"refits\": " << m.refits
        << ", \"refits_per_sec\": " << m.refits_per_sec()
        << ", \"spans_recorded\": " << m.spans_recorded
        << ", \"decisions_recorded\": " << m.decisions_recorded << "}"
        << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"full_tracing_overhead_pct\": " << overhead_pct << "\n}\n";
}

// Smoke self-validation: the artifact exists, is JSON-shaped, covers the
// off/sampled/full modes and carries the headline overhead number.
bool validate_json() {
  std::ifstream in(bench::results_path("BENCH_trace_overhead.json"));
  if (!in.good()) {
    std::fprintf(stderr, "BENCH_trace_overhead.json missing\n");
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  const bool shaped =
      !json.empty() && json.front() == '{' &&
      json.find("\"sample_rate\": 0,") != std::string::npos &&
      json.find("\"sample_rate\": 1,") != std::string::npos &&
      json.find("\"refits_per_sec\": ") != std::string::npos &&
      json.find("\"spans_recorded\": ") != std::string::npos &&
      json.find("\"full_tracing_overhead_pct\": ") != std::string::npos &&
      json.rfind('}') > json.find('{');
  if (!shaped) {
    std::fprintf(stderr, "BENCH_trace_overhead.json malformed:\n%s\n",
                 json.c_str());
  }
  return shaped;
}

int run(bool smoke) {
  // 200 claims gives a refit-heavy run (~0.5 s per rep): long enough
  // that scheduler jitter stops dominating the mode deltas.
  trace::TraceGenerator generator(trace::tiny(
      trace::boston_bombing(), smoke ? 8'000 : 240'000, smoke ? 10 : 200));
  const Dataset data = generator.generate();

  // Interleaved reps (off, sampled, full, off, …) accumulated into one
  // total per mode: interleaving spreads clock drift and thermal state
  // evenly across the modes, and totalling beats best-of because a
  // single lucky rep can no longer swing a mode's headline number.
  const int reps = smoke ? 1 : 9;
  const std::vector<double> rates = {0.0, 0.01, 1.0};
  std::vector<ModePoint> modes(rates.size());
  for (int r = 0; r < reps; ++r) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      ModePoint point = measure(data, rates[i]);
      modes[i].sample_rate = point.sample_rate;
      modes[i].wall_s += point.wall_s;
      modes[i].reports += point.reports;
      modes[i].refits += point.refits;
      modes[i].spans_recorded += point.spans_recorded;
      modes[i].decisions_recorded += point.decisions_recorded;
    }
  }

  const double base = modes.front().refits_per_sec();
  const double full = modes.back().refits_per_sec();
  const double overhead_pct =
      base > 0.0 ? (base - full) / base * 100.0 : 0.0;

  TextTable table("Causal-tracing overhead (DESIGN.md §5d)");
  table.set_columns(
      {"Sample rate", "Wall s", "Refits/s", "Spans", "Decisions"});
  for (const ModePoint& m : modes) {
    table.add_row({TextTable::num(m.sample_rate, 2), TextTable::num(m.wall_s),
                   TextTable::num(m.refits_per_sec(), 0),
                   std::to_string(m.spans_recorded),
                   std::to_string(m.decisions_recorded)});
  }
  table.print();
  std::printf("full-tracing refit-throughput overhead: %.2f%%\n",
              overhead_pct);

  emit_json(modes, overhead_pct,
            bench::scenario_provenance(generator.config(), data));
  return validate_json() ? 0 : 1;
}

}  // namespace
}  // namespace sstd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::filesystem::create_directories("bench_results");
  return sstd::run(smoke);
}
