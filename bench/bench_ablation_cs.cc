// Ablation A3 — the contribution score (Eq. 1): which of its components
// earn their keep? Each variant zeroes one factor of
// CS = attitude * (1 - uncertainty) * independence before the ACS is
// built, on a trace with strong misinformation bursts (where independence
// should matter most) and heavy hedging (where uncertainty should).
#include <cstdio>

#include "bench_common.h"

using namespace sstd;

namespace {

enum class CsVariant { kFull, kNoUncertainty, kNoIndependence, kAttitudeOnly };

Dataset strip_scores(const Dataset& data, CsVariant variant) {
  Dataset stripped(data.name(), data.num_sources(), data.num_claims(),
                   data.intervals(), data.interval_ms());
  for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
    stripped.set_ground_truth(ClaimId{u}, data.ground_truth(ClaimId{u}));
  }
  for (Report report : data.reports()) {
    if (variant == CsVariant::kNoUncertainty ||
        variant == CsVariant::kAttitudeOnly) {
      report.uncertainty = 0.0;
    }
    if (variant == CsVariant::kNoIndependence ||
        variant == CsVariant::kAttitudeOnly) {
      report.independence = 1.0;
    }
    stripped.add_report(report);
  }
  stripped.finalize();
  return stripped;
}

}  // namespace

int main() {
  auto config = trace::tiny(trace::boston_bombing(), 150'000, 80);
  config.misinformation_claim_fraction = 0.5;  // stress the burst defense
  config.hedge_probability = 0.35;
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();
  std::printf("trace: %zu reports, %u claims, 50%% of claims under "
              "misinformation bursts\n\n",
              data.num_reports(), data.num_claims());

  TextTable table("Ablation A3: contribution score components (Eq. 1)");
  table.set_columns({"Contribution score", "Accuracy", "Precision", "Recall",
                     "F1"});
  CsvWriter csv(bench::results_path("ablation_cs.csv"));
  csv.header({"variant", "accuracy", "precision", "recall", "f1"});

  const std::vector<std::pair<std::string, CsVariant>> variants = {
      {"rho * (1-kappa) * eta (full)", CsVariant::kFull},
      {"rho * eta (no uncertainty)", CsVariant::kNoUncertainty},
      {"rho * (1-kappa) (no independence)", CsVariant::kNoIndependence},
      {"rho only (plain votes)", CsVariant::kAttitudeOnly},
  };

  EvalOptions eval;
  eval.window_ms = data.interval_ms();
  for (const auto& [name, variant] : variants) {
    const Dataset variant_data = strip_scores(data, variant);
    SstdBatch sstd;
    const ConfusionMatrix cm = evaluate(variant_data, sstd.run(variant_data),
                                        eval);
    table.add_row({name, TextTable::num(cm.accuracy()),
                   TextTable::num(cm.precision()),
                   TextTable::num(cm.recall()), TextTable::num(cm.f1())});
    csv.row({name, CsvWriter::cell(cm.accuracy(), 4),
             CsvWriter::cell(cm.precision(), 4),
             CsvWriter::cell(cm.recall(), 4), CsvWriter::cell(cm.f1(), 4)});
  }
  table.print();
  return 0;
}
