// Durability bench (DESIGN.md §7): WAL append + replay throughput and
// recovery time as a function of WAL length, with and without snapshots.
// The headline numbers are replay MB/s (how fast a node re-reads its
// history) and the snapshot effect: with periodic snapshots, recovery
// replays only the WAL suffix, so recovery time stays flat as the log
// grows; with snapshots off it grows linearly.
//
// Results land in bench_results/BENCH_recovery.json with build-provenance
// metadata. `--smoke` runs a scaled-down sweep (< 5 s) and self-validates
// the emitted JSON — wired into ctest under the bench_smoke label.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "durable/recovery.h"
#include "durable/wal.h"
#include "sstd/system.h"
#include "trace/generator.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace sstd {
namespace {

namespace fs = std::filesystem;

struct WalThroughput {
  std::uint64_t records = 0;
  double append_records_per_sec = 0.0;
  double append_mb_per_sec = 0.0;
  double scan_records_per_sec = 0.0;
  double scan_mb_per_sec = 0.0;
};

struct RecoveryPoint {
  IntervalIndex intervals = 0;        // intervals logged before the kill
  IntervalIndex snapshot_every = 0;   // 0 = snapshots off (full replay)
  bool snapshot_loaded = false;
  std::uint64_t replayed_records = 0;
  double seconds = 0.0;
};

std::string scratch_dir(const std::string& tag) {
  return (fs::temp_directory_path() / ("sstd_bench_recovery_" + tag))
      .string();
}

// Raw log bandwidth: append every report of `data` as a WAL record (fsync
// left to the page cache, as under the default interval-end policy between
// boundaries), then scan the log back.
WalThroughput measure_wal(const Dataset& data) {
  const std::string dir = scratch_dir("wal");
  fs::remove_all(dir);

  WalThroughput result;
  durable::WalOptions options;
  options.fsync = durable::FsyncPolicy::kNone;
  {
    durable::WalWriter writer;
    writer.open(dir, options);
    std::uint64_t bytes = 0;
    Stopwatch watch;
    for (const Report& report : data.reports()) {
      const std::string payload = durable::encode_report_payload(report);
      bytes += durable::kWalFrameHeaderBytes + durable::kWalRecordMetaBytes +
               payload.size();
      writer.append(durable::WalRecordType::kReport, payload);
    }
    writer.sync();
    const double seconds = watch.elapsed_seconds();
    result.records = data.num_reports();
    result.append_records_per_sec =
        static_cast<double>(result.records) / seconds;
    result.append_mb_per_sec =
        static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds;
  }

  Stopwatch watch;
  std::uint64_t decoded = 0;
  const durable::WalScanStats stats =
      durable::wal_scan(dir, 0, [&decoded](const durable::WalRecord& record) {
        Report report;
        if (durable::decode_report_payload(record.payload, &report)) {
          ++decoded;
        }
      });
  const double seconds = watch.elapsed_seconds();
  result.scan_records_per_sec = static_cast<double>(decoded) / seconds;
  result.scan_mb_per_sec =
      static_cast<double>(stats.bytes) / (1024.0 * 1024.0) / seconds;
  fs::remove_all(dir);
  return result;
}

// Logs `intervals` intervals of `data` through a durable SstdSystem, kills
// it, and times a cold recover() on a fresh instance.
RecoveryPoint measure_recovery(const Dataset& data, IntervalIndex intervals,
                               IntervalIndex snapshot_every) {
  const std::string dir = scratch_dir("sys");
  fs::remove_all(dir);

  SstdSystem::Config config;
  config.workers = 2;
  config.num_jobs = 4;
  config.interval_deadline_s = 10.0;
  config.durability.dir = dir;
  config.durability.snapshot_every = snapshot_every;

  const auto& reports = data.reports();
  {
    SstdSystem system(config, data.interval_ms());
    std::size_t next = 0;
    for (IntervalIndex k = 0; k < intervals; ++k) {
      const TimestampMs end =
          static_cast<TimestampMs>(k + 1) * data.interval_ms();
      while (next < reports.size() && reports[next].time_ms < end) {
        system.ingest(reports[next]);
        ++next;
      }
      system.end_interval(k);
    }
  }

  SstdSystem revived(config, data.interval_ms());
  const auto result = revived.recover();

  RecoveryPoint point;
  point.intervals = intervals;
  point.snapshot_every = snapshot_every;
  point.snapshot_loaded = result.snapshot_loaded;
  point.replayed_records = result.replayed_records;
  point.seconds = result.seconds;
  fs::remove_all(dir);
  return point;
}

void emit_json(const WalThroughput& wal,
               const std::vector<RecoveryPoint>& points,
               const bench::RunProvenance& prov) {
  std::ofstream out(bench::results_path("BENCH_recovery.json"));
  out << "{\n  \"bench\": \"recovery\",\n  \"meta\": "
      << bench::run_metadata_json(prov) << ",\n  \"wal\": {"
      << "\"records\": " << wal.records
      << ", \"append_records_per_sec\": " << wal.append_records_per_sec
      << ", \"append_mb_per_sec\": " << wal.append_mb_per_sec
      << ", \"scan_records_per_sec\": " << wal.scan_records_per_sec
      << ", \"scan_mb_per_sec\": " << wal.scan_mb_per_sec << "},\n"
      << "  \"recovery\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RecoveryPoint& p = points[i];
    out << "    {\"intervals\": " << p.intervals
        << ", \"snapshot_every\": " << p.snapshot_every
        << ", \"snapshot_loaded\": " << (p.snapshot_loaded ? "true" : "false")
        << ", \"replayed_records\": " << p.replayed_records
        << ", \"recovery_seconds\": " << p.seconds << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// Smoke self-validation: the artifact exists, is JSON-shaped and carries
// the WAL block plus at least one recovery point per snapshot mode.
bool validate_json() {
  std::ifstream in(bench::results_path("BENCH_recovery.json"));
  if (!in.good()) {
    std::fprintf(stderr, "BENCH_recovery.json missing\n");
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  const bool shaped =
      !json.empty() && json.front() == '{' &&
      json.find("\"scan_mb_per_sec\": ") != std::string::npos &&
      json.find("\"recovery_seconds\": ") != std::string::npos &&
      json.find("\"snapshot_every\": 0") != std::string::npos &&
      json.find("\"snapshot_loaded\": true") != std::string::npos &&
      json.rfind('}') > json.find('{');
  if (!shaped) {
    std::fprintf(stderr, "BENCH_recovery.json malformed:\n%s\n",
                 json.c_str());
  }
  return shaped;
}

int run(bool smoke) {
  trace::TraceGenerator generator(trace::tiny(
      trace::boston_bombing(), smoke ? 6'000 : 60'000, smoke ? 10 : 20));
  const Dataset data = generator.generate();

  const WalThroughput wal = measure_wal(data);
  std::printf(
      "wal: %llu records, append %.0f rec/s (%.1f MB/s), "
      "replay %.0f rec/s (%.1f MB/s)\n",
      static_cast<unsigned long long>(wal.records),
      wal.append_records_per_sec, wal.append_mb_per_sec,
      wal.scan_records_per_sec, wal.scan_mb_per_sec);

  const std::vector<IntervalIndex> sweep =
      smoke ? std::vector<IntervalIndex>{10, 25}
            : std::vector<IntervalIndex>{10, 25, 50, 100};
  std::vector<RecoveryPoint> points;
  TextTable table("Recovery time vs WAL length (DESIGN.md §7)");
  table.set_columns({"Intervals", "Snapshots", "Replayed", "Recovery s"});
  for (const IntervalIndex intervals : sweep) {
    for (const IntervalIndex snapshot_every : {0, 10}) {
      points.push_back(measure_recovery(data, intervals, snapshot_every));
      const RecoveryPoint& p = points.back();
      table.add_row({std::to_string(p.intervals),
                     p.snapshot_every == 0 ? "off" : "every 10",
                     std::to_string(p.replayed_records),
                     TextTable::num(p.seconds)});
    }
  }
  table.print();

  emit_json(wal, points,
            bench::scenario_provenance(generator.config(), data));
  return validate_json() ? 0 : 1;
}

}  // namespace
}  // namespace sstd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::filesystem::create_directories("bench_results");
  return sstd::run(smoke);
}
