// Ablation A6 — fault tolerance. HTCondor scavenges idle desktops, so
// worker eviction is routine, not exceptional (the original Condor paper
// is literally titled "a hunter of idle workstations"). This bench
// measures how worker crashes degrade the simulated cluster:
//
//   * makespan inflation vs number of injected crashes, with and without
//     worker recovery;
//   * deadline hit rate under a crashy pool vs a healthy one (real
//     FaultPlan injection, PID control compensating via theta5);
//   * A6c: the *threaded* Work Queue under a FaultPlan sweep — transient
//     failure probability x worker crashes — reporting soft-deadline hit
//     rate and recovery latency (JSON in bench_results/).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"
#include "dist/fault_plan.h"
#include "dist/sim_cluster.h"
#include "dist/work_queue.h"
#include "sstd/distributed.h"

using namespace sstd;
using dist::SimCluster;
using dist::SimConfig;

namespace {

SimConfig fault_sim() {
  SimConfig config;
  config.task_init_s = 0.1;
  config.theta1 = 1e-3;
  config.comm_per_unit_s = 1e-4;
  config.worker_stagger_s = 0.0;
  config.master_dispatch_s = 0.0;
  config.worker_startup_s = 0.5;
  return config;
}

struct FaultRun {
  double makespan = 0.0;
  std::uint64_t evictions = 0;
};

FaultRun run_with_crashes(int crashes, bool recover, std::uint64_t seed) {
  SimCluster cluster = SimCluster::homogeneous(8, fault_sim());
  Rng rng(seed);
  for (std::size_t i = 0; i < 64; ++i) {
    dist::Task task;
    task.id = i;
    task.data_size = rng.uniform(1000.0, 3000.0);  // 1.1-3.1 s each
    cluster.submit(task);
  }
  // Crashes spread over the first ~20 s, hitting random workers.
  for (int i = 0; i < crashes; ++i) {
    cluster.schedule_worker_failure(
        static_cast<std::uint32_t>(rng.below(8)),
        rng.uniform(0.5, 20.0), recover ? rng.uniform(1.0, 4.0) : -1.0);
  }
  FaultRun result;
  result.makespan = cluster.run_to_completion();
  result.evictions = cluster.evictions();
  return result;
}

}  // namespace

int main() {
  TextTable table(
      "Ablation A6a: makespan [s] under worker crashes (8 workers, 64 "
      "tasks, mean over 5 seeds)");
  table.set_columns({"Crashes", "No recovery", "Evictions",
                     "With recovery (1-4 s)", "Evictions (rec)"});
  CsvWriter csv(bench::results_path("ablation_faults.csv"));
  csv.header({"crashes", "makespan_norec", "evictions_norec",
              "makespan_rec", "evictions_rec"});

  for (int crashes : {0, 2, 4, 6}) {
    double norec = 0.0;
    double rec = 0.0;
    double ev_norec = 0.0;
    double ev_rec = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const auto a = run_with_crashes(crashes, false, seed);
      const auto b = run_with_crashes(crashes, true, seed);
      norec += a.makespan;
      rec += b.makespan;
      ev_norec += static_cast<double>(a.evictions);
      ev_rec += static_cast<double>(b.evictions);
    }
    norec /= kSeeds;
    rec /= kSeeds;
    ev_norec /= kSeeds;
    ev_rec /= kSeeds;
    table.add_row({std::to_string(crashes), TextTable::num(norec, 1),
                   TextTable::num(ev_norec, 1), TextTable::num(rec, 1),
                   TextTable::num(ev_rec, 1)});
    csv.row({CsvWriter::cell(static_cast<long long>(crashes)),
             CsvWriter::cell(norec, 2), CsvWriter::cell(ev_norec, 2),
             CsvWriter::cell(rec, 2), CsvWriter::cell(ev_rec, 2)});
  }
  table.print();
  std::printf("\n");

  // A6b: deadline hit rate with a crashy pool, PID control active.
  trace::TraceGenerator generator(
      trace::tiny(trace::boston_bombing(), 60'000, 40));
  const Dataset data = generator.generate();
  const auto per_job = partition_traffic(data, 8);

  TextTable hits("Ablation A6b: deadline hit rate, healthy vs crashy pool "
                 "(PID control)");
  hits.set_columns({"Deadline (s)", "Healthy", "Crashy (evict+recover)"});
  CsvWriter hits_csv(bench::results_path("ablation_faults_deadline.csv"));
  hits_csv.header({"deadline", "healthy", "crashy"});

  for (double deadline : {1.0, 2.0, 4.0}) {
    DeadlineExperimentConfig config;
    config.deadline_s = deadline;
    config.interval_arrival_s = 2.0;
    config.initial_workers = 4;
    config.sim.theta1 = 2e-3;
    config.sim.comm_per_unit_s = 2e-4;
    const auto healthy = run_deadline_experiment(per_job, config);

    // A crash-prone variant: real chaos via the experiment's FaultPlan
    // hook — 15% of task attempts fail transiently and workers crash on a
    // rolling schedule (evict + recover). Under kPid the DTM sees the
    // eviction/failure counters and compensates through the GCK (theta5).
    DeadlineExperimentConfig crashy = config;
    crashy.fault = dist::FaultPlan(4242);
    crashy.fault.fail_tasks(0.15);
    for (std::uint32_t w = 0; w < 4; ++w) {
      crashy.fault.crash_worker(w, 1.0 + 2.0 * w, /*recover_after_s=*/1.0);
    }
    const auto degraded = run_deadline_experiment(per_job, crashy);

    hits.add_row({TextTable::num(deadline, 1),
                  TextTable::num(healthy.hit_rate),
                  TextTable::num(degraded.hit_rate)});
    hits_csv.row({CsvWriter::cell(deadline, 2),
                  CsvWriter::cell(healthy.hit_rate, 4),
                  CsvWriter::cell(degraded.hit_rate, 4)});
  }
  hits.print();
  std::printf("\n");

  // A6c: the threaded Work Queue under chaos. Sweep transient-failure
  // probability x worker crashes, all injected through the same FaultPlan
  // the tests use; measure the soft-deadline hit rate (sojourn within
  // budget) and the recovery latency of tasks that needed >1 attempt.
  TextTable chaos(
      "Ablation A6c: threaded Work Queue chaos sweep (4 workers, 48 "
      "tasks, soft deadline 0.5 s)");
  chaos.set_columns({"Fail prob", "Crashes", "Hit rate", "Recovery [ms]",
                     "Retries", "Evictions"});

  const std::string json_path =
      bench::results_path("ablation_faults_chaos.json");
  std::FILE* json = std::fopen(json_path.c_str(), "w");
  if (json) {
    std::fprintf(json,
                 "{\n  \"bench\": \"ablation_faults_chaos\",\n"
                 "  \"workers\": 4,\n  \"tasks\": 48,\n"
                 "  \"soft_deadline_s\": 0.5,\n  \"sweep\": [\n");
  }

  constexpr double kSoftDeadline = 0.5;
  bool first_entry = true;
  for (double fail_prob : {0.0, 0.1, 0.3, 0.5}) {
    for (int num_crashes : {0, 1, 2}) {
      dist::RetryPolicy retry;
      retry.base_backoff_s = 0.001;
      retry.max_backoff_s = 0.01;
      dist::FastAbortConfig fast_abort;
      fast_abort.enabled = true;
      dist::WorkQueue queue(4, retry, fast_abort);

      dist::FaultPlan plan(1000 + static_cast<std::uint64_t>(
                                      fail_prob * 100.0) * 10 +
                           static_cast<std::uint64_t>(num_crashes));
      plan.fail_tasks(fail_prob);
      if (num_crashes >= 1) {
        plan.crash_worker(0, 0.01, /*recover_after_s=*/0.05);
      }
      if (num_crashes >= 2) plan.crash_worker(1, 0.02);  // permanent
      queue.install_fault_plan(plan);

      constexpr int kTasks = 48;
      for (int i = 0; i < kTasks; ++i) {
        dist::Task task;
        task.id = static_cast<dist::TaskId>(i);
        task.max_retries = 10;
        task.work = [] {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        };
        queue.submit(std::move(task), 0.0);
      }
      queue.wait_all();

      const auto reports = queue.drain_reports();
      const auto stats = queue.stats();
      std::size_t hit = 0;
      double recovery_sum = 0.0;
      std::size_t recovered = 0;
      double makespan = 0.0;
      for (const auto& report : reports) {
        hit += report.sojourn_s() <= kSoftDeadline;
        makespan = std::max(makespan, report.finished_s);
        if (report.attempts > 1) {
          recovery_sum += report.sojourn_s();
          ++recovered;
        }
      }
      const double hit_rate =
          static_cast<double>(hit) / static_cast<double>(kTasks);
      const double recovery_latency =
          recovered ? recovery_sum / static_cast<double>(recovered) : 0.0;

      chaos.add_row({TextTable::num(fail_prob, 1),
                     std::to_string(num_crashes), TextTable::num(hit_rate),
                     TextTable::num(recovery_latency * 1e3, 1),
                     std::to_string(stats.retries),
                     std::to_string(stats.evictions)});
      if (json) {
        std::fprintf(
            json,
            "%s    {\"fail_prob\": %.2f, \"crashes\": %d, "
            "\"hit_rate\": %.4f, \"recovery_latency_s\": %.4f, "
            "\"makespan_s\": %.4f, \"retries\": %llu, "
            "\"injected_failures\": %llu, \"evictions\": %llu, "
            "\"fast_aborts\": %llu, \"quarantined\": %llu}",
            first_entry ? "" : ",\n", fail_prob, num_crashes, hit_rate,
            recovery_latency, makespan,
            static_cast<unsigned long long>(stats.retries),
            static_cast<unsigned long long>(stats.injected_failures),
            static_cast<unsigned long long>(stats.evictions),
            static_cast<unsigned long long>(stats.fast_aborts),
            static_cast<unsigned long long>(stats.quarantined));
        first_entry = false;
      }
    }
  }
  if (json) {
    std::fprintf(json, "\n  ]\n}\n");
    std::fclose(json);
    std::printf("wrote %s\n", json_path.c_str());
  }
  chaos.print();
  return 0;
}
