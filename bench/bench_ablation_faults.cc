// Ablation A6 — fault tolerance. HTCondor scavenges idle desktops, so
// worker eviction is routine, not exceptional (the original Condor paper
// is literally titled "a hunter of idle workstations"). This bench
// measures how worker crashes degrade the simulated cluster:
//
//   * makespan inflation vs number of injected crashes, with and without
//     worker recovery;
//   * deadline hit rate under a crashy pool vs a healthy one.
#include <cstdio>

#include "bench_common.h"
#include "dist/sim_cluster.h"
#include "sstd/distributed.h"

using namespace sstd;
using dist::SimCluster;
using dist::SimConfig;

namespace {

SimConfig fault_sim() {
  SimConfig config;
  config.task_init_s = 0.1;
  config.theta1 = 1e-3;
  config.comm_per_unit_s = 1e-4;
  config.worker_stagger_s = 0.0;
  config.master_dispatch_s = 0.0;
  config.worker_startup_s = 0.5;
  return config;
}

struct FaultRun {
  double makespan = 0.0;
  std::uint64_t evictions = 0;
};

FaultRun run_with_crashes(int crashes, bool recover, std::uint64_t seed) {
  SimCluster cluster = SimCluster::homogeneous(8, fault_sim());
  Rng rng(seed);
  for (std::size_t i = 0; i < 64; ++i) {
    dist::Task task;
    task.id = i;
    task.data_size = rng.uniform(1000.0, 3000.0);  // 1.1-3.1 s each
    cluster.submit(task);
  }
  // Crashes spread over the first ~20 s, hitting random workers.
  for (int i = 0; i < crashes; ++i) {
    cluster.schedule_worker_failure(
        static_cast<std::uint32_t>(rng.below(8)),
        rng.uniform(0.5, 20.0), recover ? rng.uniform(1.0, 4.0) : -1.0);
  }
  FaultRun result;
  result.makespan = cluster.run_to_completion();
  result.evictions = cluster.evictions();
  return result;
}

}  // namespace

int main() {
  TextTable table(
      "Ablation A6a: makespan [s] under worker crashes (8 workers, 64 "
      "tasks, mean over 5 seeds)");
  table.set_columns({"Crashes", "No recovery", "Evictions",
                     "With recovery (1-4 s)", "Evictions (rec)"});
  CsvWriter csv(bench::results_path("ablation_faults.csv"));
  csv.header({"crashes", "makespan_norec", "evictions_norec",
              "makespan_rec", "evictions_rec"});

  for (int crashes : {0, 2, 4, 6}) {
    double norec = 0.0;
    double rec = 0.0;
    double ev_norec = 0.0;
    double ev_rec = 0.0;
    const int kSeeds = 5;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const auto a = run_with_crashes(crashes, false, seed);
      const auto b = run_with_crashes(crashes, true, seed);
      norec += a.makespan;
      rec += b.makespan;
      ev_norec += static_cast<double>(a.evictions);
      ev_rec += static_cast<double>(b.evictions);
    }
    norec /= kSeeds;
    rec /= kSeeds;
    ev_norec /= kSeeds;
    ev_rec /= kSeeds;
    table.add_row({std::to_string(crashes), TextTable::num(norec, 1),
                   TextTable::num(ev_norec, 1), TextTable::num(rec, 1),
                   TextTable::num(ev_rec, 1)});
    csv.row({CsvWriter::cell(static_cast<long long>(crashes)),
             CsvWriter::cell(norec, 2), CsvWriter::cell(ev_norec, 2),
             CsvWriter::cell(rec, 2), CsvWriter::cell(ev_rec, 2)});
  }
  table.print();
  std::printf("\n");

  // A6b: deadline hit rate with a crashy pool, PID control active.
  trace::TraceGenerator generator(
      trace::tiny(trace::boston_bombing(), 60'000, 40));
  const Dataset data = generator.generate();
  const auto per_job = partition_traffic(data, 8);

  TextTable hits("Ablation A6b: deadline hit rate, healthy vs crashy pool "
                 "(PID control)");
  hits.set_columns({"Deadline (s)", "Healthy", "Crashy (evict+recover)"});
  CsvWriter hits_csv(bench::results_path("ablation_faults_deadline.csv"));
  hits_csv.header({"deadline", "healthy", "crashy"});

  for (double deadline : {1.0, 2.0, 4.0}) {
    DeadlineExperimentConfig config;
    config.deadline_s = deadline;
    config.interval_arrival_s = 2.0;
    config.initial_workers = 4;
    config.sim.theta1 = 2e-3;
    config.sim.comm_per_unit_s = 2e-4;
    const auto healthy = run_deadline_experiment(per_job, config);

    // A crash-prone variant: the experiment driver has no failure hook,
    // so emulate chronic unreliability as a slower effective pool — each
    // eviction re-runs a task, i.e. ~15% of work is wasted.
    DeadlineExperimentConfig crashy = config;
    crashy.sim.theta1 *= 1.15;
    crashy.sim.worker_startup_s *= 2.0;  // replacements keep arriving late
    const auto degraded = run_deadline_experiment(per_job, crashy);

    hits.add_row({TextTable::num(deadline, 1),
                  TextTable::num(healthy.hit_rate),
                  TextTable::num(degraded.hit_rate)});
    hits_csv.row({CsvWriter::cell(deadline, 2),
                  CsvWriter::cell(healthy.hit_rate, 4),
                  CsvWriter::cell(degraded.hit_rate, 4)});
  }
  hits.print();
  return 0;
}
