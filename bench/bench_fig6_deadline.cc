// Reproduces Figure 6 — deadline hit rates of all compared schemes, one
// panel per trace, sweeping the per-interval soft deadline.
//
// Protocol follows §V-B: each trace is divided into 100 equal intervals;
// an interval "hits" if all of its truth-discovery work finishes within
// the deadline. SSTD runs on the simulated cluster (paper's own cost
// model, Eq. 10-12) with the PID-driven Dynamic Task Manager steering job
// priorities (LCK) and the worker pool (GCK). The centralized baselines
// process each interval's volume sequentially on one node at their real
// measured per-report cost (calibrated on this machine at startup).
#include <cstdio>

#include "bench_common.h"
#include "sstd/distributed.h"

using namespace sstd;

namespace {

// Measures a baseline's per-report processing cost on a calibration trace.
double measure_unit_cost(BatchTruthDiscovery& scheme, const Dataset& data) {
  Stopwatch watch;
  (void)scheme.run(data);
  return watch.elapsed_seconds() / static_cast<double>(data.num_reports());
}

}  // namespace

int main() {
  // Calibrate per-report costs once on a mid-size trace.
  trace::TraceGenerator calibration_gen(
      trace::tiny(trace::boston_bombing(), 120'000, 60));
  const Dataset calibration = calibration_gen.generate();
  std::vector<std::pair<std::string, double>> unit_costs;
  for (auto& baseline : make_paper_baselines()) {
    unit_costs.emplace_back(baseline->name(),
                            measure_unit_cost(*baseline, calibration));
  }
  std::printf("calibrated per-report costs (s/report):");
  for (const auto& [name, cost] : unit_costs) {
    std::printf(" %s=%.2e", name.c_str(), cost);
  }
  std::printf("\n\n");

  const std::vector<double> deadlines{0.5, 1.0, 2.0, 4.0, 8.0};
  const double arrival_period = 5.0;

  for (const auto& base : {trace::boston_bombing(), trace::paris_shooting(),
                           trace::college_football()}) {
    // Work volumes per interval from a scaled trace (the simulator works
    // in report units; scale keeps generation fast while preserving the
    // traffic shape).
    const auto config = base.scaled_to(120'000);
    trace::TraceGenerator generator(config);
    const Dataset data = generator.generate();
    const auto per_job = partition_traffic(data, 8);
    const auto traffic = data.traffic_profile();
    const std::vector<std::uint64_t> volumes(traffic.begin(), traffic.end());

    TextTable table("Figure 6 (" + base.name +
                    "): deadline hit rate vs deadline [s]");
    std::vector<std::string> columns{"Deadline", "SSTD"};
    for (const auto& [name, _] : unit_costs) columns.push_back(name);
    table.set_columns(columns);

    CsvWriter csv(bench::results_path("fig6_deadline_" +
                                      std::to_string(base.seed) + ".csv"));
    std::vector<std::string> header{"deadline", "SSTD"};
    for (const auto& [name, _] : unit_costs) header.push_back(name);
    csv.header(header);

    for (double deadline : deadlines) {
      DeadlineExperimentConfig experiment;
      experiment.deadline_s = deadline;
      experiment.interval_arrival_s = arrival_period;
      experiment.initial_workers = 4;
      experiment.use_pid_control = true;
      // Simulated per-unit cost matches the average measured baseline
      // cost so SSTD and the baselines face comparable work.
      experiment.sim.theta1 = 2e-3;
      experiment.sim.comm_per_unit_s = 2e-4;

      const auto sstd = run_deadline_experiment(per_job, experiment);

      std::vector<std::string> row{TextTable::num(deadline, 1),
                                   TextTable::num(sstd.hit_rate)};
      std::vector<std::string> csv_row{CsvWriter::cell(deadline, 2),
                                       CsvWriter::cell(sstd.hit_rate, 4)};
      for (const auto& [name, cost] : unit_costs) {
        // Baseline cost rescaled into the simulator's unit-cost regime so
        // relative scheme speed is what differentiates them.
        const double scaled_cost =
            cost / unit_costs.front().second * 2.8e-3;
        const auto result = centralized_deadline_baseline(
            volumes, deadline, arrival_period, scaled_cost);
        row.push_back(TextTable::num(result.hit_rate));
        csv_row.push_back(CsvWriter::cell(result.hit_rate, 4));
      }
      table.add_row(row);
      csv.row(csv_row);
    }
    table.print();
    std::printf("\n");
  }
  return 0;
}
