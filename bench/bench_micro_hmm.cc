// Microbenchmarks (google-benchmark) of the hot kernels: Baum-Welch
// training, batch and online Viterbi, ACS construction and quantization.
// These bound SSTD's per-claim costs and justify the per-claim task sizing
// in the distributed runtime.
#include <benchmark/benchmark.h>

#include "core/acs.h"
#include "hmm/discrete_hmm.h"
#include "hmm/gaussian_hmm.h"
#include "hmm/online_viterbi.h"
#include "hmm/quantizer.h"
#include "util/rng.h"

namespace sstd {
namespace {

std::vector<int> random_symbols(std::size_t length, int num_symbols,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> symbols(length);
  for (auto& symbol : symbols) {
    symbol = static_cast<int>(rng.below(num_symbols));
  }
  return symbols;
}

void BM_BaumWelchFit(benchmark::State& state) {
  const auto T = static_cast<std::size_t>(state.range(0));
  const auto symbols = random_symbols(T, 7, 1);
  BaumWelchOptions options;
  options.update_emissions = false;
  options.max_iterations = 30;
  for (auto _ : state) {
    DiscreteHmm hmm = make_truth_hmm(7);
    benchmark::DoNotOptimize(hmm.fit({symbols}, options));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(T));
}
BENCHMARK(BM_BaumWelchFit)->Arg(100)->Arg(1000);

void BM_BaumWelchFullEm(benchmark::State& state) {
  const auto T = static_cast<std::size_t>(state.range(0));
  const auto symbols = random_symbols(T, 7, 2);
  BaumWelchOptions options;
  options.restarts = 4;
  for (auto _ : state) {
    DiscreteHmm hmm = make_truth_hmm(7);
    benchmark::DoNotOptimize(hmm.fit({symbols}, options));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(T));
}
BENCHMARK(BM_BaumWelchFullEm)->Arg(100);

void BM_ViterbiDecode(benchmark::State& state) {
  const auto T = static_cast<std::size_t>(state.range(0));
  const auto symbols = random_symbols(T, 7, 3);
  const DiscreteHmm hmm = make_truth_hmm(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm.decode(symbols));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(T));
}
BENCHMARK(BM_ViterbiDecode)->Arg(100)->Arg(1000)->Arg(10000);

void BM_OnlineViterbiStep(benchmark::State& state) {
  const DiscreteHmm hmm = make_truth_hmm(7);
  OnlineViterbi online(hmm.core(), /*max_lag=*/8);
  Rng rng(4);
  std::vector<double> log_emit(2);
  for (auto _ : state) {
    const int symbol = static_cast<int>(rng.below(7));
    log_emit[0] = hmm.log_b(0, symbol);
    log_emit[1] = hmm.log_b(1, symbol);
    online.step(log_emit);
    benchmark::DoNotOptimize(online.current_state());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineViterbiStep);

void BM_GaussianFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> series(static_cast<std::size_t>(state.range(0)));
  for (auto& value : series) value = rng.normal();
  BaumWelchOptions options;
  options.update_emissions = false;
  options.max_iterations = 30;
  for (auto _ : state) {
    GaussianHmm hmm = make_truth_gaussian_hmm(1.0);
    benchmark::DoNotOptimize(hmm.fit({series}, options));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GaussianFit)->Arg(100);

void BM_AcsSeriesBuild(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<Report> reports(count);
  for (std::size_t i = 0; i < count; ++i) {
    reports[i].source = SourceId{static_cast<std::uint32_t>(i % 1000)};
    reports[i].claim = ClaimId{0};
    reports[i].time_ms = static_cast<TimestampMs>(i * 100'000 / count);
    reports[i].attitude = rng.bernoulli(0.7) ? 1 : -1;
    reports[i].uncertainty = rng.uniform();
    reports[i].independence = rng.uniform(0.5, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_acs_series(reports, 100, 1000, 1000));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(count));
}
BENCHMARK(BM_AcsSeriesBuild)->Arg(1000)->Arg(100000);

void BM_QuantizeSeries(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> series(10'000);
  for (auto& value : series) value = rng.normal(0.0, 3.0);
  const AcsQuantizer quantizer(7, 3.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantizer.quantize_series(series));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(series.size()));
}
BENCHMARK(BM_QuantizeSeries);

}  // namespace
}  // namespace sstd

BENCHMARK_MAIN();
