// Microbenchmarks (google-benchmark) of the hot kernels: Baum-Welch
// training, batch and online Viterbi, ACS construction and quantization.
// These bound SSTD's per-claim costs and justify the per-claim task sizing
// in the distributed runtime.
//
// The headline comparison is scaled vs log-space HMM arithmetic
// (DESIGN.md §6): a time-boxed refits/sec + decodes/sec measurement per
// engine, written to bench_results/BENCH_micro_hmm.json with an "engine"
// field per record plus the speedup. `--smoke` runs only that comparison
// with small time budgets and self-validates the JSON (wired into ctest
// under the bench_smoke label); the full run also executes the
// google-benchmark suite.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/acs.h"
#include "hmm/discrete_hmm.h"
#include "hmm/gaussian_hmm.h"
#include "hmm/online_viterbi.h"
#include "hmm/quantizer.h"
#include "hmm/scaled_kernel.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace sstd {
namespace {

std::vector<int> random_symbols(std::size_t length, int num_symbols,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> symbols(length);
  for (auto& symbol : symbols) {
    symbol = static_cast<int>(rng.below(num_symbols));
  }
  return symbols;
}

HmmEngine engine_from_index(std::int64_t index) {
  return index == 0 ? HmmEngine::kScaled : HmmEngine::kLogSpace;
}

const char* engine_name(HmmEngine engine) {
  return engine == HmmEngine::kScaled ? "scaled" : "logspace";
}

// The production refit shape (SstdStreaming::refit): T = 100 intervals,
// informed 7-symbol truth model, frozen emissions, 30 EM iterations.
BaumWelchOptions refit_options(HmmEngine engine) {
  BaumWelchOptions options;
  options.update_emissions = false;
  options.max_iterations = 30;
  options.engine = engine;
  return options;
}

struct EngineThroughput {
  std::string engine;
  double refits_per_sec = 0.0;
  double decodes_per_sec = 0.0;
};

// Time-boxed throughput of one engine on the production refit/decode
// shapes. One workspace serves the whole loop, as in a streaming shard.
EngineThroughput measure_engine(HmmEngine engine, double budget_s) {
  constexpr std::size_t kT = 100;
  const auto symbols = random_symbols(kT, 7, 1);
  const std::vector<std::vector<int>> batch{symbols};
  const BaumWelchOptions options = refit_options(engine);
  HmmWorkspace workspace;

  EngineThroughput result;
  result.engine = engine_name(engine);

  {
    DiscreteHmm warmup = make_truth_hmm(7);
    warmup.fit(batch, options, &workspace);  // buffers reach full size
  }
  std::uint64_t refits = 0;
  Stopwatch fit_watch;
  double elapsed = 0.0;
  do {
    DiscreteHmm hmm = make_truth_hmm(7);
    benchmark::DoNotOptimize(hmm.fit(batch, options, &workspace));
    ++refits;
  } while ((elapsed = fit_watch.elapsed_seconds()) < budget_s);
  result.refits_per_sec = static_cast<double>(refits) / elapsed;

  const DiscreteHmm decoder = make_truth_hmm(7);
  const LogMatrix log_emit = decoder.emission_log_probs(symbols);
  std::uint64_t decodes = 0;
  Stopwatch decode_watch;
  do {
    benchmark::DoNotOptimize(
        viterbi(decoder.core(), log_emit, kT, engine));
    ++decodes;
  } while ((elapsed = decode_watch.elapsed_seconds()) < budget_s / 4.0);
  result.decodes_per_sec = static_cast<double>(decodes) / elapsed;
  return result;
}

void emit_engine_json(const std::vector<EngineThroughput>& engines,
                      double speedup, const std::string& profile_json) {
  // Kernel bench over one synthetic 100-symbol claim series (seed 1 in
  // random_symbols above) — provenance names that shape, not a trace.
  bench::RunProvenance prov;
  prov.workload = "micro_hmm_random_symbols";
  prov.seed = 1;
  prov.num_claims = 1;
  prov.num_reports = 100;
  std::ofstream out(bench::results_path("BENCH_micro_hmm.json"));
  out << "{\n  \"bench\": \"micro_hmm\",\n  \"meta\": "
      << bench::run_metadata_json(prov) << ",\n  \"refit_shape\": "
      << "{\"T\": 100, \"states\": 2, \"symbols\": 7, \"iterations\": 30},\n"
      << "  \"engines\": [\n";
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const EngineThroughput& e = engines[i];
    out << "    {\"engine\": \"" << e.engine
        << "\", \"refits_per_sec\": " << e.refits_per_sec
        << ", \"decodes_per_sec\": " << e.decodes_per_sec << "}"
        << (i + 1 < engines.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"speedup_refits_scaled_vs_logspace\": " << speedup;
  if (!profile_json.empty()) {
    out << ",\n  \"profile\": " << profile_json;
  }
  out << "\n}\n";
}

// Smoke self-validation: the emitted file must exist, look like a JSON
// object and carry both engines' records with positive finite numbers.
bool validate_engine_json() {
  std::ifstream in(bench::results_path("BENCH_micro_hmm.json"));
  if (!in.good()) {
    std::fprintf(stderr, "BENCH_micro_hmm.json missing\n");
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  const bool shaped = !json.empty() && json.front() == '{' &&
                      json.find("\"engine\": \"scaled\"") != std::string::npos &&
                      json.find("\"engine\": \"logspace\"") !=
                          std::string::npos &&
                      json.find("\"refits_per_sec\": ") != std::string::npos &&
                      json.find("\"speedup_refits_scaled_vs_logspace\": ") !=
                          std::string::npos &&
                      json.rfind('}') > json.find('{');
  if (!shaped) {
    std::fprintf(stderr, "BENCH_micro_hmm.json malformed:\n%s\n",
                 json.c_str());
  }
  return shaped;
}

// Runs the dual-engine comparison, emits + validates the JSON. Returns
// false only on a malformed artifact (throughput itself is reported, not
// gated: CI machines vary). With `profile`, the sampling profiler runs
// across the measurement, folded stacks land in
// bench_results/PROFILE_micro_hmm.folded, and the top-k cost centers are
// embedded into the JSON (ISSUE 10).
bool run_engine_comparison(bool smoke, bool profile) {
  const double budget_s = smoke ? 0.4 : 2.0;
  if (profile) {
    obs::CostRegistry::global().reset();
    obs::CpuProfiler::register_current_thread();
    std::string prof_error;
    if (!obs::CpuProfiler::global().start({}, &prof_error)) {
      std::fprintf(stderr, "profiler not armed: %s\n", prof_error.c_str());
    }
  }
  std::vector<EngineThroughput> engines;
  engines.push_back(measure_engine(HmmEngine::kScaled, budget_s));
  engines.push_back(measure_engine(HmmEngine::kLogSpace, budget_s));
  std::string profile_json;
  if (profile) {
    obs::CpuProfiler& prof = obs::CpuProfiler::global();
    if (prof.running()) {
      prof.stop();
      const std::string path =
          bench::write_folded_stacks("micro_hmm", prof.collect_folded());
      if (!path.empty()) std::printf("folded stacks: %s\n", path.c_str());
    }
    profile_json = bench::cost_profile_json();
  }
  const double speedup =
      engines[1].refits_per_sec > 0.0
          ? engines[0].refits_per_sec / engines[1].refits_per_sec
          : 0.0;
  emit_engine_json(engines, speedup, profile_json);

  for (const auto& e : engines) {
    std::printf("engine=%-8s refits/sec=%10.1f decodes/sec=%10.1f\n",
                e.engine.c_str(), e.refits_per_sec, e.decodes_per_sec);
  }
  std::printf("speedup (refits, scaled vs logspace): %.2fx\n", speedup);
  if (!std::isfinite(speedup) || speedup <= 0.0) return false;
  return validate_engine_json();
}

void BM_BaumWelchFit(benchmark::State& state) {
  const auto T = static_cast<std::size_t>(state.range(0));
  const HmmEngine engine = engine_from_index(state.range(1));
  const auto symbols = random_symbols(T, 7, 1);
  const std::vector<std::vector<int>> batch{symbols};
  const BaumWelchOptions options = refit_options(engine);
  HmmWorkspace workspace;
  for (auto _ : state) {
    DiscreteHmm hmm = make_truth_hmm(7);
    benchmark::DoNotOptimize(hmm.fit(batch, options, &workspace));
  }
  state.SetLabel(engine_name(engine));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(T));
}
BENCHMARK(BM_BaumWelchFit)
    ->ArgNames({"T", "engine"})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1});

void BM_BaumWelchFullEm(benchmark::State& state) {
  const auto T = static_cast<std::size_t>(state.range(0));
  const HmmEngine engine = engine_from_index(state.range(1));
  const auto symbols = random_symbols(T, 7, 2);
  BaumWelchOptions options;
  options.restarts = 4;
  options.engine = engine;
  for (auto _ : state) {
    DiscreteHmm hmm = make_truth_hmm(7);
    benchmark::DoNotOptimize(hmm.fit({symbols}, options));
  }
  state.SetLabel(engine_name(engine));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(T));
}
BENCHMARK(BM_BaumWelchFullEm)
    ->ArgNames({"T", "engine"})
    ->Args({100, 0})
    ->Args({100, 1});

void BM_ViterbiDecode(benchmark::State& state) {
  const auto T = static_cast<std::size_t>(state.range(0));
  const HmmEngine engine = engine_from_index(state.range(1));
  const auto symbols = random_symbols(T, 7, 3);
  const DiscreteHmm hmm = make_truth_hmm(7);
  const LogMatrix log_emit = hmm.emission_log_probs(symbols);
  for (auto _ : state) {
    benchmark::DoNotOptimize(viterbi(hmm.core(), log_emit, T, engine));
  }
  state.SetLabel(engine_name(engine));
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(T));
}
BENCHMARK(BM_ViterbiDecode)
    ->ArgNames({"T", "engine"})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({10000, 0})
    ->Args({10000, 1});

void BM_OnlineViterbiStep(benchmark::State& state) {
  const DiscreteHmm hmm = make_truth_hmm(7);
  OnlineViterbi online(hmm.core(), /*max_lag=*/8);
  Rng rng(4);
  std::vector<double> log_emit(2);
  for (auto _ : state) {
    const int symbol = static_cast<int>(rng.below(7));
    log_emit[0] = hmm.log_b(0, symbol);
    log_emit[1] = hmm.log_b(1, symbol);
    online.step(log_emit);
    benchmark::DoNotOptimize(online.current_state());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OnlineViterbiStep);

void BM_GaussianFit(benchmark::State& state) {
  const HmmEngine engine = engine_from_index(state.range(1));
  Rng rng(5);
  std::vector<double> series(static_cast<std::size_t>(state.range(0)));
  for (auto& value : series) value = rng.normal();
  BaumWelchOptions options;
  options.update_emissions = false;
  options.max_iterations = 30;
  options.engine = engine;
  HmmWorkspace workspace;
  for (auto _ : state) {
    GaussianHmm hmm = make_truth_gaussian_hmm(1.0);
    benchmark::DoNotOptimize(hmm.fit({series}, options, &workspace));
  }
  state.SetLabel(engine_name(engine));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GaussianFit)
    ->ArgNames({"T", "engine"})
    ->Args({100, 0})
    ->Args({100, 1});

void BM_AcsSeriesBuild(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<Report> reports(count);
  for (std::size_t i = 0; i < count; ++i) {
    reports[i].source = SourceId{static_cast<std::uint32_t>(i % 1000)};
    reports[i].claim = ClaimId{0};
    reports[i].time_ms = static_cast<TimestampMs>(i * 100'000 / count);
    reports[i].attitude = rng.bernoulli(0.7) ? 1 : -1;
    reports[i].uncertainty = rng.uniform();
    reports[i].independence = rng.uniform(0.5, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        build_acs_series(reports, 100, 1000, 1000));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(count));
}
BENCHMARK(BM_AcsSeriesBuild)->Arg(1000)->Arg(100000);

void BM_QuantizeSeries(benchmark::State& state) {
  Rng rng(7);
  std::vector<double> series(10'000);
  for (auto& value : series) value = rng.normal(0.0, 3.0);
  const AcsQuantizer quantizer(7, 3.0);
  std::vector<int> symbols;
  for (auto _ : state) {
    quantizer.quantize_series_into(series, symbols);
    benchmark::DoNotOptimize(symbols.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(series.size()));
}
BENCHMARK(BM_QuantizeSeries);

}  // namespace
}  // namespace sstd

int main(int argc, char** argv) {
  bool smoke = false;
  bool profile = false;
  std::vector<char*> bench_args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  std::filesystem::create_directories("bench_results");
  const bool ok = sstd::run_engine_comparison(smoke, profile);
  if (smoke) return ok ? 0 : 1;

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return ok ? 0 : 1;
}
