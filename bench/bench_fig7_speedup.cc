// Reproduces Figure 7 — scalability of the SSTD scheme: Speedup(N) =
// (serial makespan) / (makespan on N workers) for synthetic traces of
// growing size, up to beyond the paper's Super-Bowl reference point of
// 16.9M tweets.
//
// Runs on the discrete-event cluster simulator with the paper's cost
// model (Eq. 10: ET = TI + D*theta1) plus the overheads the paper cites
// as the reason ideal speedup is unattainable: per-worker recruitment
// stagger, per-task master dispatch and data-transfer cost. The paper's
// qualitative findings hold: speedup is sublinear but grows with both
// worker count and data size.
#include <cstdio>

#include "bench_common.h"
#include "sstd/distributed.h"

using namespace sstd;

int main() {
  const std::vector<double> sizes{1e6, 4e6, 16.9e6, 40e6};
  const std::vector<std::size_t> workers{2, 4, 8, 16, 32, 64};
  const std::size_t tasks = 512;  // per-claim TD tasks in flight

  TextTable table(
      "Figure 7: Speedup(N) = T(1)/T(N) vs data size (simulated cluster)");
  std::vector<std::string> columns{"Tweets", "T(1) [s]"};
  for (auto n : workers) columns.push_back("N=" + std::to_string(n));
  table.set_columns(columns);

  CsvWriter csv(bench::results_path("fig7_speedup.csv"));
  std::vector<std::string> header{"tweets", "serial_s"};
  for (auto n : workers) header.push_back("speedup_" + std::to_string(n));
  csv.header(header);

  for (double size : sizes) {
    const double serial = simulate_makespan(size, tasks, 1);
    std::vector<std::string> row{TextTable::num(size, 0),
                                 TextTable::num(serial, 1)};
    std::vector<std::string> csv_row{CsvWriter::cell(size, 0),
                                     CsvWriter::cell(serial, 2)};
    for (std::size_t n : workers) {
      const double speedup = serial / simulate_makespan(size, tasks, n);
      row.push_back(TextTable::num(speedup, 2));
      csv_row.push_back(CsvWriter::cell(speedup, 3));
    }
    table.add_row(row);
    csv.row(csv_row);
  }
  table.print();
  std::printf("\n(16.9M tweets = the paper's Super Bowl 2016 reference "
              "volume; speedup improves with data size because fixed "
              "recruitment/dispatch overheads amortize, matching §V-B.)\n");
  return 0;
}
