// Ablation A4 — the claim-dependency extension (paper §VII future work,
// sstd/correlated.h): on a trace where a quarter of the claims come in
// correlated (popular, sparse) pairs sharing a truth series, how much does
// evidence sharing lift accuracy — overall, and specifically on the sparse
// partners that benefit most? Sweeps the blend weight.
#include <cstdio>

#include "bench_common.h"
#include "core/acs.h"
#include "sstd/correlated.h"

using namespace sstd;

int main() {
  auto config = trace::tiny(trace::boston_bombing(), 150'000, 80);
  config.correlated_pairs = 20;  // 40 of 80 claims are in pairs
  trace::TraceGenerator generator(config);
  const Dataset data = generator.generate();
  const auto pairs = trace::TraceGenerator::correlated_claim_pairs(config);

  std::vector<ClaimCorrelation> correlations;
  std::vector<bool> is_sparse_partner(data.num_claims(), false);
  for (const auto& [popular, sparse] : pairs) {
    correlations.push_back({popular, sparse, 1.0});
    is_sparse_partner[sparse] = true;
  }
  std::printf("trace: %zu reports, %u claims, %zu correlated pairs\n\n",
              data.num_reports(), data.num_claims(), pairs.size());

  EvalOptions eval;
  eval.window_ms = data.interval_ms();

  // Accuracy restricted to the sparse partners (active intervals only).
  auto sparse_accuracy = [&](const EstimateMatrix& estimates) {
    ConfusionMatrix cm;
    for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
      if (!is_sparse_partner[u]) continue;
      const auto counts = build_window_counts(
          data.reports_of_claim(ClaimId{u}), data.intervals(),
          data.interval_ms(), data.interval_ms());
      const auto& truth = data.ground_truth(ClaimId{u});
      for (IntervalIndex k = 0; k < data.intervals(); ++k) {
        if (counts[k] == 0) continue;
        cm.add(truth[k] != 0, estimates[u][k] == 1);
      }
    }
    return cm.accuracy();
  };

  TextTable table("Ablation A4: claim-dependency extension (blend sweep)");
  table.set_columns({"Variant", "Overall acc", "Sparse-partner acc"});
  CsvWriter csv(bench::results_path("ablation_corr.csv"));
  csv.header({"variant", "overall_accuracy", "sparse_accuracy"});

  auto add = [&](const std::string& name, const EstimateMatrix& estimates) {
    const double overall = evaluate(data, estimates, eval).accuracy();
    const double sparse = sparse_accuracy(estimates);
    table.add_row({name, TextTable::num(overall), TextTable::num(sparse)});
    csv.row({name, CsvWriter::cell(overall, 4),
             CsvWriter::cell(sparse, 4)});
  };

  SstdBatch plain;
  add("SSTD (no correlation model)", plain.run(data));
  for (double blend : {0.2, 0.35, 0.5, 0.7}) {
    CorrelatedSstd correlated(correlations, SstdConfig{}, blend);
    add("SSTD+corr blend=" + TextTable::num(blend, 2),
        correlated.run(data));
  }

  table.print();
  return 0;
}
