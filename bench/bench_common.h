// Shared helpers for the table/figure reproduction benches. Every bench
// prints an aligned console table in the paper's shape and mirrors the
// series to CSV under bench_results/ for plotting.
#pragma once

#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>
#include <cstdio>

#include "baselines/baselines.h"
#include "core/metrics.h"
#include "obs/cost.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "sstd/batch.h"
#include "trace/generator.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace sstd::bench {

inline std::string results_path(const std::string& file) {
  return "bench_results/" + file;
}

// Scheme lineup of the accuracy tables: SSTD first, then the paper's six
// baselines in its order.
inline std::vector<std::unique_ptr<BatchTruthDiscovery>> accuracy_lineup(
    TimestampMs window_ms = 0) {
  std::vector<std::unique_ptr<BatchTruthDiscovery>> schemes;
  schemes.push_back(std::make_unique<SstdBatch>());
  for (auto& baseline : make_paper_baselines(window_ms)) {
    schemes.push_back(std::move(baseline));
  }
  return schemes;
}

struct SchemeScore {
  std::string name;
  ConfusionMatrix cm;
  double seconds = 0.0;
  // Per-task execution latency quantiles observed during the run
  // (wq.execution_s from the global registry); 0 for single-threaded
  // schemes that never touch the Work Queue.
  double task_p50_s = 0.0;
  double task_p95_s = 0.0;
};

// Runs every scheme on `data`, scoring active intervals (one-interval ACS
// window mask). Wall times land in a bench-local `bench.scheme_seconds`
// histogram so the JSON emitter can report run-level quantiles.
inline std::vector<SchemeScore> score_all(const Dataset& data) {
  EvalOptions eval;
  eval.window_ms = data.interval_ms();
  obs::MetricsRegistry bench_registry;
  obs::Histogram* wall = bench_registry.histogram("bench.scheme_seconds");
  std::vector<SchemeScore> scores;
  for (auto& scheme : accuracy_lineup()) {
    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::global().snapshot();
    const obs::HistogramSnapshot* exec0 = before.histogram("wq.execution_s");
    const std::uint64_t tasks_before = exec0 ? exec0->count : 0;

    Stopwatch watch;
    const EstimateMatrix estimates = scheme->run(data);
    SchemeScore score;
    score.seconds = watch.elapsed_seconds();
    wall->observe(score.seconds);
    score.name = scheme->name();
    score.cm = evaluate(data, estimates, eval);

    const obs::MetricsSnapshot after =
        obs::MetricsRegistry::global().snapshot();
    if (const obs::HistogramSnapshot* exec = after.histogram("wq.execution_s");
        exec != nullptr && exec->count > tasks_before) {
      score.task_p50_s = exec->quantile(0.50);
      score.task_p95_s = exec->quantile(0.95);
    }
    scores.push_back(std::move(score));
  }
  return scores;
}

// Workload provenance (ISSUE 9 satellite): which generator produced the
// numbers, under which seed, and how big the run was. Threaded into every
// BENCH_*.json's meta block so two artifacts are comparable only when
// these match — a regression against a different seed or claim count is
// not a regression.
struct RunProvenance {
  std::string workload;  // scenario / workload-generator name
  std::uint64_t seed = 0;
  std::uint64_t num_claims = 0;
  std::uint64_t num_reports = 0;
};

// Provenance of a generated scenario trace (Tables III–V, recovery bench).
inline RunProvenance scenario_provenance(const trace::ScenarioConfig& config,
                                         const Dataset& data) {
  RunProvenance prov;
  prov.workload = config.name;
  prov.seed = config.seed;
  prov.num_claims = config.num_claims;
  prov.num_reports = data.num_reports();
  return prov;
}

// Run provenance: git SHA and build type are baked in at configure time
// (top-level CMakeLists), timestamp and thread count are read at run
// time, workload identity comes from the caller. Embedded in every
// BENCH_*.json so the bench trajectory stays comparable across PRs and
// machines.
inline std::string run_metadata_json(const RunProvenance& prov = {}) {
  char timestamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm utc{}; gmtime_r(&now, &utc) != nullptr) {
    std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
#ifdef SSTD_GIT_SHA
  const char* git_sha = SSTD_GIT_SHA;
#else
  const char* git_sha = "unknown";
#endif
#ifdef SSTD_BUILD_TYPE
  const char* build_type = SSTD_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
  std::string out = "{\"git_sha\": \"";
  out += git_sha;
  out += "\", \"utc_time\": \"";
  out += timestamp;
  out += "\", \"hardware_threads\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ", \"build_type\": \"";
  out += build_type;
  out += "\", \"workload\": \"";
  out += prov.workload.empty() ? "unspecified" : prov.workload;
  out += "\", \"seed\": ";
  out += std::to_string(prov.seed);
  out += ", \"num_claims\": ";
  out += std::to_string(prov.num_claims);
  out += ", \"num_reports\": ";
  out += std::to_string(prov.num_reports);
  out += "}";
  return out;
}

// --profile support (ISSUE 10): the top-k cost centers by self wall time
// from the global phase cost tree, with percentages of total attributed
// self time, as a JSON object for embedding into BENCH_*.json artifacts.
// Includes the profiler's sample/drop counters when it ran.
inline std::string cost_profile_json(std::size_t top_k = 8) {
  const obs::CostTreeSnapshot snap = obs::CostRegistry::global().snapshot();
  std::vector<obs::CostNodeSnapshot> nodes = snap.nodes;
  std::sort(nodes.begin(), nodes.end(),
            [](const obs::CostNodeSnapshot& a, const obs::CostNodeSnapshot& b) {
              return a.self_wall_s > b.self_wall_s;
            });
  if (nodes.size() > top_k) nodes.resize(top_k);
  const double total_self = snap.total_self_wall_s();
  char buffer[256];
  std::string out = "{";
  std::snprintf(buffer, sizeof(buffer), "\"total_self_wall_s\": %.6f", total_self);
  out += buffer;
  const obs::CpuProfiler& prof = obs::CpuProfiler::global();
  std::snprintf(buffer, sizeof(buffer),
                ", \"prof_supported\": %s, \"prof_samples\": %llu, "
                "\"prof_dropped_samples\": %llu",
                obs::CpuProfiler::supported() ? "true" : "false",
                static_cast<unsigned long long>(prof.samples_captured()),
                static_cast<unsigned long long>(prof.samples_dropped()));
  out += buffer;
  out += ", \"top_cost_centers\": [";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const obs::CostNodeSnapshot& n = nodes[i];
    const double pct = total_self > 0.0 ? 100.0 * n.self_wall_s / total_self : 0.0;
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"path\": \"%s\", \"self_wall_s\": %.6f, "
                  "\"total_wall_s\": %.6f, \"count\": %llu, "
                  "\"pct_self\": %.2f}",
                  i > 0 ? ", " : "", n.path.c_str(), n.self_wall_s,
                  n.total_wall_s, static_cast<unsigned long long>(n.count),
                  pct);
    out += buffer;
  }
  out += "]}";
  return out;
}

// Writes folded stacks next to the JSON artifacts; returns the path (or
// "" when there was nothing to write).
inline std::string write_folded_stacks(const std::string& bench_name,
                                       const std::string& folded) {
  if (folded.empty()) return "";
  const std::string path = results_path("PROFILE_" + bench_name + ".folded");
  std::ofstream out(path);
  out << folded;
  return path;
}

// Machine-readable run summary: bench_results/BENCH_<name>.json with run
// metadata plus one record per scheme (name, wall seconds, task-latency
// p50/p95).
inline void emit_bench_json(const std::string& bench_name,
                            const std::vector<SchemeScore>& scores,
                            const RunProvenance& prov = {}) {
  std::ofstream out(results_path("BENCH_" + bench_name + ".json"));
  out << "{\n  \"bench\": \"" << bench_name << "\",\n  \"meta\": "
      << run_metadata_json(prov) << ",\n  \"schemes\": [\n";
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const SchemeScore& s = scores[i];
    out << "    {\"name\": \"" << s.name << "\", \"seconds\": " << s.seconds
        << ", \"task_p50_s\": " << s.task_p50_s
        << ", \"task_p95_s\": " << s.task_p95_s
        << ", \"accuracy\": " << s.cm.accuracy() << ", \"f1\": " << s.cm.f1()
        << "}" << (i + 1 < scores.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

// Emits one accuracy table (paper Tables III-V) to stdout + CSV.
inline void emit_accuracy_table(const std::string& title,
                                const std::string& csv_name,
                                const std::vector<SchemeScore>& scores,
                                const RunProvenance& prov = {}) {
  TextTable table(title);
  table.set_columns({"Method", "Accuracy", "Precision", "Recall", "F1-Score"});
  CsvWriter csv(results_path(csv_name));
  csv.header({"method", "accuracy", "precision", "recall", "f1", "seconds"});
  for (const auto& score : scores) {
    table.add_row({score.name, TextTable::num(score.cm.accuracy()),
                   TextTable::num(score.cm.precision()),
                   TextTable::num(score.cm.recall()),
                   TextTable::num(score.cm.f1())});
    csv.row({score.name, CsvWriter::cell(score.cm.accuracy(), 4),
             CsvWriter::cell(score.cm.precision(), 4),
             CsvWriter::cell(score.cm.recall(), 4),
             CsvWriter::cell(score.cm.f1(), 4),
             CsvWriter::cell(score.seconds, 3)});
  }
  table.print();

  // Mirror the run to machine-readable JSON next to the CSV.
  std::string stem = csv_name;
  if (const auto dot = stem.rfind('.'); dot != std::string::npos) {
    stem.resize(dot);
  }
  emit_bench_json(stem, scores, prov);
}

}  // namespace sstd::bench
