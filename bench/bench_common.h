// Shared helpers for the table/figure reproduction benches. Every bench
// prints an aligned console table in the paper's shape and mirrors the
// series to CSV under bench_results/ for plotting.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "core/metrics.h"
#include "sstd/batch.h"
#include "trace/generator.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace sstd::bench {

inline std::string results_path(const std::string& file) {
  return "bench_results/" + file;
}

// Scheme lineup of the accuracy tables: SSTD first, then the paper's six
// baselines in its order.
inline std::vector<std::unique_ptr<BatchTruthDiscovery>> accuracy_lineup(
    TimestampMs window_ms = 0) {
  std::vector<std::unique_ptr<BatchTruthDiscovery>> schemes;
  schemes.push_back(std::make_unique<SstdBatch>());
  for (auto& baseline : make_paper_baselines(window_ms)) {
    schemes.push_back(std::move(baseline));
  }
  return schemes;
}

struct SchemeScore {
  std::string name;
  ConfusionMatrix cm;
  double seconds = 0.0;
};

// Runs every scheme on `data`, scoring active intervals (one-interval ACS
// window mask).
inline std::vector<SchemeScore> score_all(const Dataset& data) {
  EvalOptions eval;
  eval.window_ms = data.interval_ms();
  std::vector<SchemeScore> scores;
  for (auto& scheme : accuracy_lineup()) {
    Stopwatch watch;
    const EstimateMatrix estimates = scheme->run(data);
    SchemeScore score;
    score.seconds = watch.elapsed_seconds();
    score.name = scheme->name();
    score.cm = evaluate(data, estimates, eval);
    scores.push_back(std::move(score));
  }
  return scores;
}

// Emits one accuracy table (paper Tables III-V) to stdout + CSV.
inline void emit_accuracy_table(const std::string& title,
                                const std::string& csv_name,
                                const std::vector<SchemeScore>& scores) {
  TextTable table(title);
  table.set_columns({"Method", "Accuracy", "Precision", "Recall", "F1-Score"});
  CsvWriter csv(results_path(csv_name));
  csv.header({"method", "accuracy", "precision", "recall", "f1", "seconds"});
  for (const auto& score : scores) {
    table.add_row({score.name, TextTable::num(score.cm.accuracy()),
                   TextTable::num(score.cm.precision()),
                   TextTable::num(score.cm.recall()),
                   TextTable::num(score.cm.f1())});
    csv.row({score.name, CsvWriter::cell(score.cm.accuracy(), 4),
             CsvWriter::cell(score.cm.precision(), 4),
             CsvWriter::cell(score.cm.recall(), 4),
             CsvWriter::cell(score.cm.f1(), 4),
             CsvWriter::cell(score.seconds, 3)});
  }
  table.print();
}

}  // namespace sstd::bench
