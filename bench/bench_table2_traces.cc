// Reproduces Table II — "Data Trace Statistics": generates the three
// synthetic traces at paper scale and prints their statistics next to the
// paper's reported values.
#include <cstdio>

#include "bench_common.h"

using namespace sstd;

int main() {
  struct PaperRow {
    trace::ScenarioConfig config;
    const char* start_date;
    const char* duration;
  };
  const std::vector<PaperRow> rows = {
      {trace::paris_shooting(), "Jan. 1 2015", "3 days"},
      {trace::boston_bombing(), "Apr. 15 2013", "4 days"},
      {trace::college_football(), "Sep. 30 2016", "3 days"},
  };

  TextTable table("Table II: Data Trace Statistics (generated vs paper)");
  table.set_columns({"Data Trace", "Duration", "Search Keywords",
                     "# Reports (paper)", "# Reports (ours)",
                     "# Sources (paper)", "# Sources (ours)",
                     "flips/claim", "peak/mean"});
  CsvWriter csv(bench::results_path("table2_traces.csv"));
  csv.header({"trace", "paper_reports", "our_reports", "paper_sources",
              "our_sources", "flips_per_claim", "peak_to_mean"});

  for (const auto& row : rows) {
    trace::TraceGenerator generator(row.config);
    const Dataset data = generator.generate();
    const auto stats = trace::TraceGenerator::compute_stats(data, row.config);
    table.add_row({row.config.name, row.duration, stats.keywords,
                   std::to_string(row.config.total_reports),
                   std::to_string(stats.num_reports),
                   std::to_string(row.config.table2_sources),
                   std::to_string(stats.num_sources),
                   TextTable::num(stats.truth_flips_per_claim, 1),
                   TextTable::num(stats.peak_to_mean_traffic, 1)});
    csv.row({row.config.name,
             CsvWriter::cell(static_cast<long long>(row.config.total_reports)),
             CsvWriter::cell(static_cast<long long>(stats.num_reports)),
             CsvWriter::cell(static_cast<long long>(row.config.table2_sources)),
             CsvWriter::cell(static_cast<long long>(stats.num_sources)),
             CsvWriter::cell(stats.truth_flips_per_claim, 2),
             CsvWriter::cell(stats.peak_to_mean_traffic, 2)});
  }
  table.print();
  std::printf("\n(# Reports (ours) exceeds the organic target because "
              "misinformation bursts add volume on top; # Sources counts "
              "distinct reporting sources, as in the paper.)\n");
  return 0;
}
