// Soak harness (ISSUE 9, DESIGN.md §8): streams millions of synthesized
// reports over a 1M+ claim space through the full SstdSystem runtime for a
// wall-time budget, sampling the process once per interval and asserting
// the soak contract continuously:
//
//   bounded-rss       — idle-claim eviction must hold RSS flat once the
//                       key space has been swept (obs/proc_stats)
//   staleness-slo     — p95 ingest→decision staleness stays under the SLO
//                       (stream.decision_staleness_s, obs/slo)
//   drop-rate-growth  — trace-span / provenance-ring drops per report must
//                       not grow monotonically (obs/soak)
//
// Traffic comes from workload/ReportSynthesizer: a YCSB-style load phase
// sweeps every claim id once, then the configured popularity distribution
// (zipfian / uniform / latest / hotspot / hotspot_shift) drives the run
// phase. `--chaos` adds a deterministic crash-kill during a refit round,
// with WAL+snapshot durability on, so recovery cost lands inside the same
// staleness budget the assertions check.
//
// Results land in bench_results/BENCH_soak.json (self-validated). `--smoke`
// runs a seconds-scale ~100k-claim soak — wired into ctest under the
// bench_smoke label and green under TSan.
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "obs/proc_stats.h"
#include "obs/soak.h"
#include "sstd/system.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "workload/synth.h"

namespace sstd {
namespace {

namespace fs = std::filesystem;

struct SoakOptions {
  bool smoke = false;
  bool chaos = false;
  bool profile = false;  // arm the sampling profiler + embed cost centers
  double run_budget_s = 60.0;     // run-phase wall budget (after load)
  std::uint64_t num_claims = 1'050'000;
  std::string workload = "zipfian";
  std::uint64_t seed = 20260808;
  double slo_s = 5.0;
  IntervalIndex min_run_intervals = 12;
  IntervalIndex max_intervals = 100'000;
};

workload::WorkloadConfig make_workload(const SoakOptions& opts) {
  workload::WorkloadConfig wc;
  wc.name = opts.workload;
  wc.seed = opts.seed;
  wc.num_claims = opts.num_claims;
  if (opts.workload == "uniform") {
    wc.dist.kind = workload::KeyDistKind::kUniform;
  } else if (opts.workload == "latest") {
    wc.dist.kind = workload::KeyDistKind::kLatest;
  } else if (opts.workload == "hotspot" ||
             opts.workload == "hotspot_shift") {
    wc.dist.kind = workload::KeyDistKind::kHotspot;
  } else if (opts.workload != "zipfian") {
    throw std::invalid_argument("unknown workload: " + opts.workload);
  }
  if (opts.smoke) {
    wc.reports_per_interval = 10'000;
    wc.load_reports_per_interval = 25'000;
  } else {
    wc.reports_per_interval = 25'000;
    wc.load_reports_per_interval = 75'000;
  }
  if (opts.workload == "hotspot_shift") {
    // Relocate the hot range a few times over a typical run.
    wc.dist.hotspot_shift_every = wc.reports_per_interval * 10;
  }
  if (wc.dist.kind == workload::KeyDistKind::kLatest) {
    // No load sweep; the frontier introduces claims continuously.
    wc.frontier_per_interval = wc.num_claims / 40 + 1;
  }
  return wc;
}

SstdSystem::Config make_system_config(const SoakOptions& opts,
                                      const workload::ReportSynthesizer& synth,
                                      const std::string& durable_dir) {
  SstdSystem::Config config;
  config.workers = opts.smoke ? 2 : 4;
  config.num_jobs = opts.smoke ? 4 : 8;
  config.interval_deadline_s = 30.0;
  config.sstd.refit_every = opts.smoke ? 5 : 10;
  config.sstd.warmup_intervals = opts.smoke ? 3 : 4;
  // The bounded-memory mechanism under test: idle claims are evicted, so
  // the pipeline map tracks the working set, not the key space.
  config.sstd.evict_after_idle_intervals = opts.smoke ? 4 : 6;
  config.trace_sample_rate = 0.01;
  if (opts.chaos) {
    config.durability.dir = durable_dir;
    config.durability.snapshot_every = config.sstd.refit_every;
    // Kill the refitting shard twice at the first refit round after the
    // load sweep; the retry budget covers both kills plus the clean pass.
    const IntervalIndex refit = config.sstd.refit_every;
    const IntervalIndex kill =
        ((synth.load_intervals() + config.sstd.warmup_intervals) / refit + 1) *
            refit - 1;
    config.fault_plan.crash_kill_during_refit(kill, 2);
    config.shard_task_retries = 4;
  }
  return config;
}

struct SoakTotals {
  IntervalIndex intervals = 0;
  std::uint64_t reports = 0;
  std::uint64_t claims_touched = 0;
  double wall_s = 0.0;
  double run_reports_per_sec = 0.0;  // run phase only (post-load)
  std::size_t max_shard_backlog = 0;
  double active_claims_final = 0.0;
  std::uint64_t claims_evicted = 0;
};

std::string json_num(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void emit_json(const SoakOptions& opts, const workload::WorkloadConfig& wc,
               const SstdSystem::Config& config, const SoakTotals& totals,
               const obs::SoakReport& report, const obs::SoakLimits& limits,
               const std::string& profile_json) {
  bench::RunProvenance prov;
  prov.workload = wc.name;
  prov.seed = wc.seed;
  prov.num_claims = totals.claims_touched;
  prov.num_reports = totals.reports;

  std::ofstream out(bench::results_path("BENCH_soak.json"));
  out << "{\n  \"bench\": \"soak\",\n  \"meta\": "
      << bench::run_metadata_json(prov) << ",\n"
      << "  \"workload\": {\"name\": \"" << wc.name
      << "\", \"num_claims\": " << wc.num_claims
      << ", \"reports_per_interval\": " << wc.reports_per_interval
      << ", \"load_reports_per_interval\": " << wc.load_reports_per_interval
      << ", \"zipf_theta\": " << json_num(wc.dist.zipf_theta) << "},\n"
      << "  \"system\": {\"workers\": " << config.workers
      << ", \"num_jobs\": " << config.num_jobs
      << ", \"refit_every\": " << config.sstd.refit_every
      << ", \"evict_after_idle_intervals\": "
      << config.sstd.evict_after_idle_intervals
      << ", \"chaos\": " << (opts.chaos ? "true" : "false") << "},\n"
      << "  \"totals\": {\"intervals\": " << totals.intervals
      << ", \"reports\": " << totals.reports
      << ", \"claims_touched\": " << totals.claims_touched
      << ", \"wall_s\": " << json_num(totals.wall_s)
      << ", \"run_reports_per_sec\": " << json_num(totals.run_reports_per_sec)
      << ", \"max_shard_backlog\": " << totals.max_shard_backlog
      << ", \"active_claims_final\": " << json_num(totals.active_claims_final)
      << ", \"claims_evicted\": " << totals.claims_evicted << "},\n"
      << "  \"staleness\": {\"p95_s\": " << json_num(report.staleness_p95)
      << ", \"p99_s\": " << json_num(report.staleness_p99)
      << ", \"slo_s\": " << json_num(limits.staleness_slo_s) << "},\n"
      << "  \"rss\": {\"baseline_bytes\": " << report.baseline_rss_bytes
      << ", \"peak_bytes\": " << report.peak_rss_bytes << "},\n"
      << "  \"drops\": {\"trace_spans\": " << report.trace_dropped_spans
      << ", \"provenance_records\": " << report.provenance_dropped_records
      << "},\n  \"assertions\": [\n";
  const char* invariants[] = {"bounded-rss", "staleness-slo",
                              "drop-rate-growth"};
  for (std::size_t i = 0; i < 3; ++i) {
    std::string detail;
    for (const auto& v : report.violations) {
      if (v.invariant == invariants[i]) detail = v.detail;
    }
    out << "    {\"invariant\": \"" << invariants[i]
        << "\", \"ok\": " << (detail.empty() ? "true" : "false")
        << ", \"detail\": \"" << detail << "\"}" << (i + 1 < 3 ? "," : "")
        << "\n";
  }
  out << "  ],\n";
  if (!profile_json.empty()) {
    out << "  \"profile\": " << profile_json << ",\n";
  }
  out << "  \"ok\": " << (report.ok() ? "true" : "false") << "\n}\n";
}

// Smoke self-validation: the artifact exists, is JSON-shaped and carries
// every invariant verdict plus the headline throughput number.
bool validate_json() {
  std::ifstream in(bench::results_path("BENCH_soak.json"));
  if (!in.good()) {
    std::fprintf(stderr, "BENCH_soak.json missing\n");
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  const bool shaped =
      !json.empty() && json.front() == '{' &&
      json.find("\"bench\": \"soak\"") != std::string::npos &&
      json.find("\"run_reports_per_sec\": ") != std::string::npos &&
      json.find("\"invariant\": \"bounded-rss\"") != std::string::npos &&
      json.find("\"invariant\": \"staleness-slo\"") != std::string::npos &&
      json.find("\"invariant\": \"drop-rate-growth\"") != std::string::npos &&
      json.find("\"workload\": ") != std::string::npos &&
      json.find("\"seed\": ") != std::string::npos &&
      json.rfind('}') > json.find('{');
  if (!shaped) {
    std::fprintf(stderr, "BENCH_soak.json malformed:\n%s\n", json.c_str());
  }
  return shaped;
}

int run(const SoakOptions& opts) {
  workload::WorkloadConfig wc = make_workload(opts);
  workload::ReportSynthesizer synth(wc);

  const std::string durable_dir =
      (fs::temp_directory_path() / "sstd_bench_soak_wal").string();
  if (opts.chaos) fs::remove_all(durable_dir);
  const SstdSystem::Config config =
      make_system_config(opts, synth, durable_dir);
  SstdSystem system(config, wc.interval_ms);

  obs::SoakLimits limits;
  limits.staleness_slo_s = opts.slo_s;
  // The load sweep grows RSS by design (one pipeline per claim until the
  // idle GC catches up); the bounded-rss baseline starts after it.
  limits.warmup_samples = static_cast<std::size_t>(synth.load_intervals()) + 2;
  obs::SoakMonitor monitor(limits);

  std::printf(
      "soak: workload=%s claims=%" PRIu64 " load_intervals=%d budget=%.0fs"
      " slo=%.1fs chaos=%d\n",
      wc.name.c_str(), wc.num_claims, synth.load_intervals(),
      opts.run_budget_s, opts.slo_s, opts.chaos ? 1 : 0);

  // --profile: reset the cost tree so this run's attribution is clean,
  // then arm the sampling profiler across the whole load+run window.
  bool profiling = false;
  if (opts.profile) {
    obs::CostRegistry::global().reset();
    obs::CpuProfiler::register_current_thread();
    std::string prof_error;
    profiling = obs::CpuProfiler::global().start({}, &prof_error);
    if (!profiling) {
      std::fprintf(stderr, "soak: profiler unavailable: %s\n",
                   prof_error.c_str());
    }
  }

  const IntervalIndex load = synth.load_intervals();
  std::vector<Report> batch;
  Stopwatch wall;
  Stopwatch run_watch;
  std::uint64_t run_reports = 0;
  IntervalIndex k = 0;
  while (k < opts.max_intervals) {
    const bool in_load = k < load;
    if (!in_load && k >= load + opts.min_run_intervals &&
        run_watch.elapsed_seconds() >= opts.run_budget_s) {
      break;
    }
    if (k == load) run_watch.restart();
    synth.generate_interval(k, &batch);
    system.ingest_batch(batch);
    system.end_interval(k);
    if (!in_load) run_reports += batch.size();
    const obs::SoakSample& s = monitor.sample();
    if (k % 10 == 0 || k == load - 1) {
      std::printf(
          "  k=%-5d %-4s rss=%6.1fMiB active=%9.0f p95=%6.3fs"
          " reports=%" PRIu64 "\n",
          k, in_load ? "load" : "run",
          static_cast<double>(s.rss_bytes) / (1024.0 * 1024.0),
          s.active_claims, s.staleness_p95, s.reports_ingested);
    }
    ++k;
  }

  std::string profile_json;
  if (opts.profile) {
    if (profiling) {
      obs::CpuProfiler::global().stop();
      const std::string path = bench::write_folded_stacks(
          "soak", obs::CpuProfiler::global().collect_folded());
      if (!path.empty()) std::printf("soak: folded stacks -> %s\n", path.c_str());
    }
    profile_json = bench::cost_profile_json();
  }

  SoakTotals totals;
  totals.intervals = k;
  totals.reports = synth.reports_generated();
  totals.claims_touched = synth.claims_touched();
  totals.wall_s = wall.elapsed_seconds();
  const double run_s = run_watch.elapsed_seconds();
  totals.run_reports_per_sec =
      run_s > 0.0 ? static_cast<double>(run_reports) / run_s : 0.0;
  totals.max_shard_backlog = system.backpressure().max_shard_backlog;
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  totals.claims_evicted = snap.counter_value("stream.claims_evicted");
  for (const auto& [name, value] : snap.gauges) {
    if (name == "stream.active_claims") totals.active_claims_final = value;
  }

  const obs::SoakReport report = monitor.evaluate();

  TextTable table("Soak summary (DESIGN.md §8)");
  table.set_columns({"Metric", "Value"});
  table.add_row({"intervals", std::to_string(totals.intervals)});
  table.add_row({"reports", std::to_string(totals.reports)});
  table.add_row({"claims touched", std::to_string(totals.claims_touched)});
  table.add_row({"run reports/s", TextTable::num(totals.run_reports_per_sec, 0)});
  table.add_row({"p95 staleness s", TextTable::num(report.staleness_p95)});
  table.add_row(
      {"baseline RSS MiB",
       TextTable::num(static_cast<double>(report.baseline_rss_bytes) /
                      (1024.0 * 1024.0))});
  table.add_row(
      {"peak RSS MiB",
       TextTable::num(static_cast<double>(report.peak_rss_bytes) /
                      (1024.0 * 1024.0))});
  table.add_row({"claims evicted", std::to_string(totals.claims_evicted)});
  table.print();

  for (const auto& v : report.violations) {
    std::fprintf(stderr, "SOAK VIOLATION [%s]: %s\n", v.invariant.c_str(),
                 v.detail.c_str());
  }
  // Coverage check: with a load phase (or a latest frontier that swept the
  // space), every claim id must have been emitted at least once.
  bool coverage_ok = true;
  if (wc.load_reports_per_interval > 0 &&
      totals.claims_touched < wc.num_claims) {
    coverage_ok = false;
    std::fprintf(stderr,
                 "SOAK VIOLATION [claims-coverage]: touched %" PRIu64
                 " of %" PRIu64 " claims\n",
                 totals.claims_touched, wc.num_claims);
  }

  emit_json(opts, wc, config, totals, report, limits, profile_json);
  if (opts.chaos) fs::remove_all(durable_dir);
  return (report.ok() && coverage_ok && validate_json()) ? 0 : 1;
}

}  // namespace
}  // namespace sstd

int main(int argc, char** argv) {
  sstd::SoakOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--smoke") == 0) {
      opts.smoke = true;
      opts.num_claims = 100'000;
      opts.run_budget_s = 4.0;
      opts.slo_s = 30.0;  // TSan headroom: staleness tracks task wall time
      opts.min_run_intervals = 8;
    } else if (std::strcmp(arg, "--chaos") == 0) {
      opts.chaos = true;
    } else if (std::strcmp(arg, "--profile") == 0) {
      opts.profile = true;
    } else if (std::strncmp(arg, "--seconds=", 10) == 0) {
      opts.run_budget_s = std::atof(arg + 10);
    } else if (std::strncmp(arg, "--claims=", 9) == 0) {
      opts.num_claims = std::strtoull(arg + 9, nullptr, 10);
    } else if (std::strncmp(arg, "--workload=", 11) == 0) {
      opts.workload = arg + 11;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--slo=", 6) == 0) {
      opts.slo_s = std::atof(arg + 6);
    } else {
      std::fprintf(stderr,
                   "usage: bench_soak [--smoke] [--chaos] [--profile]"
                   " [--seconds=N] [--claims=N] [--workload=zipfian|uniform|"
                   "latest|hotspot|hotspot_shift] [--seed=N] [--slo=S]\n");
      return 2;
    }
  }
  std::filesystem::create_directories("bench_results");
  return sstd::run(opts);
}
