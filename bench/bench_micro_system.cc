// System microbenchmarks (google-benchmark): end-to-end ingest throughput
// of the streaming engine and the full SstdSystem, plus baseline solver
// throughput — the numbers that size a deployment ("how many tweets/sec
// does one node absorb?").
#include <benchmark/benchmark.h>

#include "baselines/truthfinder.h"
#include "sstd/streaming.h"
#include "sstd/system.h"
#include "trace/generator.h"

namespace sstd {
namespace {

const Dataset& bench_dataset() {
  static const Dataset data = [] {
    trace::TraceGenerator generator(
        trace::tiny(trace::boston_bombing(), 60'000, 40));
    return generator.generate();
  }();
  return data;
}

void BM_StreamingEngineIngest(benchmark::State& state) {
  const Dataset& data = bench_dataset();
  for (auto _ : state) {
    SstdConfig config;
    config.refit_every = 20;
    SstdStreaming engine(config, data.interval_ms());
    const auto estimates = replay_streaming(engine, data);
    benchmark::DoNotOptimize(estimates);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_reports()));
}
BENCHMARK(BM_StreamingEngineIngest)->Unit(benchmark::kMillisecond);

void BM_SstdSystemEndToEnd(benchmark::State& state) {
  const Dataset& data = bench_dataset();
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SstdSystem::Config config;
    config.workers = workers;
    config.num_jobs = 8;
    config.interval_deadline_s = 10.0;
    SstdSystem system(config, data.interval_ms());
    const auto& reports = data.reports();
    std::size_t next = 0;
    for (IntervalIndex k = 0; k < data.intervals(); ++k) {
      const TimestampMs end =
          static_cast<TimestampMs>(k + 1) * data.interval_ms();
      while (next < reports.size() && reports[next].time_ms < end) {
        system.ingest(reports[next]);
        ++next;
      }
      system.end_interval(k);
    }
    benchmark::DoNotOptimize(system.metrics().tasks_completed);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_reports()));
}
BENCHMARK(BM_SstdSystemEndToEnd)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotBuild(benchmark::State& state) {
  const Dataset& data = bench_dataset();
  for (auto _ : state) {
    const Snapshot snapshot{std::span<const Report>(data.reports())};
    benchmark::DoNotOptimize(snapshot.num_claims());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.num_reports()));
}
BENCHMARK(BM_SnapshotBuild)->Unit(benchmark::kMillisecond);

void BM_TruthFinderSolve(benchmark::State& state) {
  const Dataset& data = bench_dataset();
  const Snapshot snapshot{std::span<const Report>(data.reports())};
  TruthFinder solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(snapshot));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(snapshot.assertions().size()));
}
BENCHMARK(BM_TruthFinderSolve)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sstd

BENCHMARK_MAIN();
