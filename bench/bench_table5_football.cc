// Reproduces Table V — truth discovery accuracy on the College Football
// trace (score-change claims; rarer positive class, so precision drops for
// every scheme, as in the paper).
//
// Paper values for reference (Table V): SSTD .801/.661/.792/.723,
// DynaTD .765/.471/.570/.515, TruthFinder .612/.542/.455/.495,
// RTD .752/.555/.649/.598, CATD .736/.542/.764/.634,
// Invest .722/.478/.716/.574, 3-Estimates .674/.396/.677/.501.
#include "bench_common.h"

using namespace sstd;

int main() {
  trace::TraceGenerator generator(trace::college_football());
  const Dataset data = generator.generate();
  const auto scores = bench::score_all(data);
  bench::emit_accuracy_table(
      "Table V: Truth Discovery Results - College Football",
      "table5_football.csv", scores,
      bench::scenario_provenance(generator.config(), data));
  return 0;
}
