// Ablation A2 — the feedback control loop:
//   * PID gain grid (the paper tunes Kp/Ki/Kd in [0,3] and lands on
//     1.2/0.3/0.2, §V-A3)
//   * PID DTM vs fixed allocation at several deadlines
//   * knob isolation: LCK-only (priorities, fixed pool) vs full control
#include <cstdio>

#include "bench_common.h"
#include "sstd/distributed.h"

using namespace sstd;

namespace {

DeadlineExperimentConfig base_experiment(double deadline) {
  DeadlineExperimentConfig config;
  config.deadline_s = deadline;
  config.interval_arrival_s = 2.0;
  config.initial_workers = 4;
  config.sim.theta1 = 2e-3;
  config.sim.comm_per_unit_s = 2e-4;
  return config;
}

}  // namespace

int main() {
  trace::TraceGenerator generator(
      trace::tiny(trace::boston_bombing(), 60'000, 40));
  const Dataset data = generator.generate();
  const auto per_job = partition_traffic(data, 8);

  // --- PID gain grid at a tight deadline --------------------------------
  TextTable grid("Ablation A2a: PID gain grid, hit rate at 1.0 s deadline "
                 "(paper's pick: Kp=1.2 Ki=0.3 Kd=0.2)");
  grid.set_columns({"Kp", "Ki", "Kd", "Hit rate", "Mean workers"});
  CsvWriter grid_csv(bench::results_path("ablation_pid_grid.csv"));
  grid_csv.header({"kp", "ki", "kd", "hit_rate", "mean_workers"});

  for (double kp : {0.0, 0.6, 1.2, 2.4}) {
    for (double ki : {0.0, 0.3}) {
      for (double kd : {0.0, 0.2}) {
        auto experiment = base_experiment(1.0);
        experiment.dtm.gains.kp = kp;
        experiment.dtm.gains.ki = ki;
        experiment.dtm.gains.kd = kd;
        const auto result = run_deadline_experiment(per_job, experiment);
        grid.add_row({TextTable::num(kp, 1), TextTable::num(ki, 1),
                      TextTable::num(kd, 1),
                      TextTable::num(result.hit_rate),
                      TextTable::num(result.mean_workers, 1)});
        grid_csv.row({CsvWriter::cell(kp, 1), CsvWriter::cell(ki, 1),
                      CsvWriter::cell(kd, 1),
                      CsvWriter::cell(result.hit_rate, 4),
                      CsvWriter::cell(result.mean_workers, 2)});
      }
    }
  }
  grid.print();
  std::printf("\n");

  // --- control policy comparison across deadlines -----------------------
  TextTable policy(
      "Ablation A2b: control policy vs deadline (hit rate | mean workers)");
  policy.set_columns({"Deadline (s)", "PID (LCK+GCK)", "LCK only",
                      "Fixed allocation", "RTO (exact, SVII)"});
  CsvWriter policy_csv(bench::results_path("ablation_pid_policy.csv"));
  policy_csv.header({"deadline", "pid_full", "pid_workers", "lck_only",
                     "fixed", "rto", "rto_workers"});

  for (double deadline : {0.5, 1.0, 2.0, 4.0}) {
    auto full = base_experiment(deadline);
    const auto full_result = run_deadline_experiment(per_job, full);

    auto lck_only = base_experiment(deadline);
    lck_only.dtm.min_workers = lck_only.dtm.max_workers = 4;  // pin GCK
    const auto lck_result = run_deadline_experiment(per_job, lck_only);

    auto fixed = base_experiment(deadline);
    fixed.use_pid_control = false;
    const auto fixed_result = run_deadline_experiment(per_job, fixed);

    auto rto = base_experiment(deadline);
    rto.policy = ControlPolicy::kRto;
    const auto rto_result = run_deadline_experiment(per_job, rto);

    auto cell = [](const DeadlineExperimentResult& r) {
      return TextTable::num(r.hit_rate) + " | " +
             TextTable::num(r.mean_workers, 1);
    };
    policy.add_row({TextTable::num(deadline, 1), cell(full_result),
                    cell(lck_result), cell(fixed_result),
                    cell(rto_result)});
    policy_csv.row({CsvWriter::cell(deadline, 2),
                    CsvWriter::cell(full_result.hit_rate, 4),
                    CsvWriter::cell(full_result.mean_workers, 2),
                    CsvWriter::cell(lck_result.hit_rate, 4),
                    CsvWriter::cell(fixed_result.hit_rate, 4),
                    CsvWriter::cell(rto_result.hit_rate, 4),
                    CsvWriter::cell(rto_result.mean_workers, 2)});
  }
  policy.print();
  return 0;
}
