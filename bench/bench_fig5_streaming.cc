// Reproduces Figure 5 — total running time vs streaming speed (tweets per
// second) over a 100-second stream, one panel per trace.
//
// Protocol follows §V-B: streaming schemes (SSTD, DynaTD) consume data as
// it arrives; batch schemes (TruthFinder, RTD, CATD, ...) "retrieve and
// process 5 seconds of data each time periodically". A batch cannot start
// before its window's data has arrived nor before the previous batch
// finished, so compute slower than real time accumulates backlog — the
// divergence the paper's figure shows.
//
// Platform factor: the paper's implementation is Python on a 4-core node;
// this repository's C++ kernels process a report in well under a
// microsecond, so at the paper's tweet rates nothing ever falls behind
// real time. To reproduce the responsiveness phenomenon, every *measured*
// compute time is multiplied by a fixed platform factor (default 500x,
// argv[1] overrides). Relative costs between schemes remain this
// machine's real measurements; only the absolute scale is shifted into
// the paper's regime (see DESIGN.md substitutions).
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "sstd/streaming.h"

using namespace sstd;

namespace {

constexpr double kStreamSeconds = 100.0;
constexpr double kBatchPeriod = 5.0;
double g_platform_factor = 500.0;

// Builds a 100-second stream at `rate` tweets/s from the scenario family.
Dataset make_stream(const trace::ScenarioConfig& base, double rate) {
  auto config = base.scaled_to(
      static_cast<std::uint64_t>(rate * kStreamSeconds));
  config.duration_days = kStreamSeconds / 86'400.0;  // interval_ms = 1000
  config.intervals = 100;
  config.misinformation_duration = 10;
  trace::TraceGenerator generator(config);
  return generator.generate();
}

// Total running time of a streaming scheme: it processes each interval's
// data when the interval closes; if processing is faster than real time
// the stream clock dominates.
double run_streaming(StreamingTruthDiscovery& scheme, const Dataset& data) {
  const auto& reports = data.reports();
  std::size_t next = 0;
  double compute = 0.0;
  for (IntervalIndex k = 0; k < data.intervals(); ++k) {
    const TimestampMs end =
        static_cast<TimestampMs>(k + 1) * data.interval_ms();
    Stopwatch watch;
    while (next < reports.size() && reports[next].time_ms < end) {
      scheme.offer(reports[next]);
      ++next;
    }
    scheme.end_interval(k);
    compute += watch.elapsed_seconds() * g_platform_factor;
  }
  return std::max(kStreamSeconds, compute);
}

// Total running time of a batch scheme under the periodic-reprocessing
// protocol (5-second windows, no overlap with arrival).
double run_batched(StaticSolver& solver, const Dataset& data) {
  const auto& reports = data.reports();
  std::size_t next = 0;
  double finish = 0.0;
  const int batches = static_cast<int>(kStreamSeconds / kBatchPeriod);
  for (int b = 0; b < batches; ++b) {
    const double arrival = (b + 1) * kBatchPeriod;
    const TimestampMs end = static_cast<TimestampMs>(arrival * 1000.0);
    std::vector<Report> window;
    while (next < reports.size() && reports[next].time_ms < end) {
      window.push_back(reports[next]);
      ++next;
    }
    Stopwatch watch;
    const Snapshot snapshot{std::span<const Report>(window)};
    if (snapshot.num_claims() > 0) (void)solver.solve(snapshot);
    const double compute = watch.elapsed_seconds() * g_platform_factor;
    finish = std::max(finish, arrival) + compute;
  }
  return std::max(finish, kStreamSeconds);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) g_platform_factor = std::atof(argv[1]);
  std::printf("platform factor: %.0fx (measured compute scaled into the "
              "paper's Python-on-testbed regime; see header comment)\n\n",
              g_platform_factor);
  const std::vector<double> rates{100, 400, 1600, 6400, 12'800};

  for (const auto& base : {trace::boston_bombing(), trace::paris_shooting(),
                           trace::college_football()}) {
    TextTable table("Figure 5 (" + base.name +
                    "): total running time [s] vs tweets/sec (100 s stream)");
    table.set_columns({"Tweets/s", "SSTD", "DynaTD", "TruthFinder", "RTD",
                       "CATD"});
    CsvWriter csv(bench::results_path("fig5_streaming_" +
                                      std::to_string(base.seed) + ".csv"));
    csv.header({"rate", "sstd", "dynatd", "truthfinder", "rtd", "catd"});

    for (double rate : rates) {
      const Dataset data = make_stream(base, rate);

      SstdConfig sstd_config;
      sstd_config.refit_every = 20;
      SstdStreaming sstd(sstd_config, data.interval_ms());
      const double sstd_time = run_streaming(sstd, data);

      DynaTd dynatd;
      const double dynatd_time = run_streaming(dynatd, data);

      TruthFinder truthfinder;
      const double tf_time = run_batched(truthfinder, data);

      // RTD keeps cross-window state, so it runs through its own batch
      // runner. Rebin the stream into one interval per 5 s batch so RTD
      // performs exactly one window evaluation per batch, like the other
      // batch schemes; the measured per-window compute then feeds the same
      // arrival/backlog model.
      const int batch_count = static_cast<int>(kStreamSeconds / kBatchPeriod);
      Dataset rebinned(data.name(), data.num_sources(), data.num_claims(),
                       batch_count,
                       static_cast<TimestampMs>(kBatchPeriod * 1000.0));
      for (const Report& report : data.reports()) rebinned.add_report(report);
      rebinned.finalize();
      Rtd rtd;
      Stopwatch rtd_watch;
      (void)rtd.run(rebinned);
      const double rtd_compute =
          rtd_watch.elapsed_seconds() * g_platform_factor;
      const double per_batch = rtd_compute / batch_count;
      double rtd_finish = 0.0;
      for (int b = 0; b < batch_count; ++b) {
        const double arrival = (b + 1) * kBatchPeriod;
        rtd_finish = std::max(rtd_finish, arrival) + per_batch;
      }
      const double rtd_time = std::max(rtd_finish, kStreamSeconds);

      Catd catd;
      const double catd_time = run_batched(catd, data);

      table.add_row({TextTable::num(rate, 0), TextTable::num(sstd_time, 1),
                     TextTable::num(dynatd_time, 1),
                     TextTable::num(tf_time, 1), TextTable::num(rtd_time, 1),
                     TextTable::num(catd_time, 1)});
      csv.row({CsvWriter::cell(rate, 0), CsvWriter::cell(sstd_time, 2),
               CsvWriter::cell(dynatd_time, 2), CsvWriter::cell(tf_time, 2),
               CsvWriter::cell(rtd_time, 2), CsvWriter::cell(catd_time, 2)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("(Streaming schemes stay near the 100 s stream duration; "
              "batch schemes fall behind once per-window compute exceeds "
              "the 5 s arrival period.)\n");
  return 0;
}
