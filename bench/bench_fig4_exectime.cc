// Reproduces Figure 4 — execution time of all compared schemes vs data
// size, one panel per trace. SSTD runs on the threaded Work Queue with 4
// workers (the paper's §V-B setup); baselines run single-threaded, as in
// the paper ("they are not designed as distributed schemes").
//
// Note: this reproduction host has one CPU core, so the threaded worker
// pool adds concurrency but not parallel speedup — SSTD's advantage here
// comes from its per-claim decomposition and cheap incremental math, which
// is also true of the measured numbers (cluster-scale parallel speedup is
// reproduced separately in Figure 7's simulation).
#include <cstdio>

#include "bench_common.h"
#include "sstd/distributed.h"

using namespace sstd;

int main() {
  const std::vector<double> fractions{0.125, 0.25, 0.5, 1.0};

  for (const auto& base : {trace::boston_bombing(), trace::paris_shooting(),
                           trace::college_football()}) {
    TextTable table("Figure 4 (" + base.name +
                    "): execution time [s] vs data size");
    std::vector<std::string> columns{"Reports"};
    CsvWriter csv(bench::results_path(
        "fig4_exectime_" + std::to_string(base.seed) + ".csv"));

    std::vector<std::vector<std::string>> rows;
    std::vector<std::string> names;
    bool first_size = true;

    for (double fraction : fractions) {
      const auto config = base.scaled_to(
          static_cast<std::uint64_t>(base.total_reports * fraction));
      trace::TraceGenerator generator(config);
      const Dataset data = generator.generate();

      std::vector<std::string> row{std::to_string(data.num_reports())};
      std::vector<std::string> csv_row{
          CsvWriter::cell(static_cast<long long>(data.num_reports()))};

      // SSTD on the threaded Work Queue (4 workers).
      {
        DistributedConfig dist_config;
        dist_config.workers = 4;
        DistributedSstd sstd(dist_config);
        Stopwatch watch;
        (void)sstd.run(data);
        const double seconds = watch.elapsed_seconds();
        if (first_size) names.push_back("SSTD");
        row.push_back(TextTable::num(seconds, 2));
        csv_row.push_back(CsvWriter::cell(seconds, 4));
      }

      for (auto& baseline : make_paper_baselines()) {
        Stopwatch watch;
        (void)baseline->run(data);
        const double seconds = watch.elapsed_seconds();
        if (first_size) names.push_back(baseline->name());
        row.push_back(TextTable::num(seconds, 2));
        csv_row.push_back(CsvWriter::cell(seconds, 4));
      }

      rows.push_back(row);
      if (first_size) {
        for (const auto& name : names) columns.push_back(name);
        std::vector<std::string> header{"reports"};
        for (const auto& name : names) header.push_back(name);
        csv.header(header);
      }
      csv.row(csv_row);
      first_size = false;
    }

    table.set_columns(columns);
    for (auto& row : rows) table.add_row(std::move(row));
    table.print();
    std::printf("\n");
  }
  return 0;
}
