// Profiler-overhead bench (ISSUE 10, DESIGN.md §5e): what does the
// sampling CPU profiler cost the streaming runtime while armed? Drives
// the same SstdSystem workload with the profiler off and armed at the
// default rate (97 Hz) and compares report/refit throughput. The
// acceptance bar is <=3% throughput overhead with sampling on.
//
// Results land in bench_results/BENCH_prof_overhead.json with
// build-provenance metadata. `--smoke` runs a scaled-down sweep (< 5 s)
// and self-validates the emitted JSON — wired into ctest under the
// bench_smoke label. Under sanitizer builds the profiler refuses to arm
// (SSTD_PROF_DISABLED); the bench still runs both modes and reports
// prof_supported=false with ~0 overhead, keeping the ctest wiring green.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sstd/system.h"
#include "trace/generator.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace sstd {
namespace {

struct ModePoint {
  bool profiled = false;
  double wall_s = 0.0;
  std::uint64_t reports = 0;
  std::uint64_t refits = 0;
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;

  double reports_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(reports) / wall_s : 0.0;
  }
  double refits_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(refits) / wall_s : 0.0;
  }
};

// One full streaming run of `data`, optionally with the sampling
// profiler armed for the duration. Throughput is the metric sampling
// must not tax.
ModePoint measure(const Dataset& data, bool profiled,
                  const obs::CpuProfilerConfig& prof_config) {
  SstdSystem::Config config;
  config.workers = 4;
  config.num_jobs = 8;
  config.interval_deadline_s = 10.0;
  config.sstd.refit_every = 1;  // refit-dominated: samples land in hot code
  config.sstd.warmup_intervals = 1;
  SstdSystem system(config, data.interval_ms());

  obs::Counter* refit_counter =
      obs::MetricsRegistry::global().counter("stream.refits");
  const std::uint64_t refits_before = refit_counter->value();

  ModePoint point;
  point.profiled = profiled;
  bool armed = false;
  if (profiled && obs::CpuProfiler::supported()) {
    obs::CpuProfiler::register_current_thread();
    std::string error;
    armed = obs::CpuProfiler::global().start(prof_config, &error);
    if (!armed) {
      std::fprintf(stderr, "prof_overhead: profiler unavailable: %s\n",
                   error.c_str());
    }
  }
  const std::uint64_t samples_before =
      obs::CpuProfiler::global().samples_captured();
  const std::uint64_t dropped_before =
      obs::CpuProfiler::global().samples_dropped();

  const auto& reports = data.reports();
  std::size_t next = 0;
  Stopwatch watch;
  for (IntervalIndex k = 0; k < data.intervals(); ++k) {
    const TimestampMs end =
        static_cast<TimestampMs>(k + 1) * data.interval_ms();
    while (next < reports.size() && reports[next].time_ms < end) {
      system.ingest(reports[next]);
      ++next;
    }
    system.end_interval(k);
  }
  point.wall_s = watch.elapsed_seconds();

  if (armed) {
    obs::CpuProfiler::global().stop();
    // Drain the window's rings so per-rep sample counts are attributed
    // (and the folded output at the end covers every rep).
    (void)obs::CpuProfiler::global().collect_folded();
  }
  point.reports = system.metrics().reports_ingested;
  point.refits = refit_counter->value() - refits_before;
  point.samples =
      obs::CpuProfiler::global().samples_captured() - samples_before;
  point.dropped =
      obs::CpuProfiler::global().samples_dropped() - dropped_before;
  return point;
}

void emit_json(const std::vector<ModePoint>& modes, double overhead_pct,
               bool measurable, int hz, const bench::RunProvenance& prov) {
  std::ofstream out(bench::results_path("BENCH_prof_overhead.json"));
  out << "{\n  \"bench\": \"prof_overhead\",\n  \"meta\": "
      << bench::run_metadata_json(prov) << ",\n  \"prof_supported\": "
      << (obs::CpuProfiler::supported() ? "true" : "false")
      << ",\n  \"prof_hz\": " << hz << ",\n  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModePoint& m = modes[i];
    out << "    {\"profiled\": " << (m.profiled ? "true" : "false")
        << ", \"wall_s\": " << m.wall_s << ", \"reports\": " << m.reports
        << ", \"reports_per_sec\": " << m.reports_per_sec()
        << ", \"refits\": " << m.refits
        << ", \"refits_per_sec\": " << m.refits_per_sec()
        << ", \"samples\": " << m.samples << ", \"dropped\": " << m.dropped
        << "}" << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"overhead_measurable\": " << (measurable ? "true" : "false")
      << ",\n  \"profiler_overhead_pct\": " << overhead_pct << "\n}\n";
}

// Smoke self-validation: the artifact exists, is JSON-shaped, covers the
// off/armed modes and carries the headline overhead number.
bool validate_json() {
  std::ifstream in(bench::results_path("BENCH_prof_overhead.json"));
  if (!in.good()) {
    std::fprintf(stderr, "BENCH_prof_overhead.json missing\n");
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  const bool shaped =
      !json.empty() && json.front() == '{' &&
      json.find("\"profiled\": false") != std::string::npos &&
      json.find("\"profiled\": true") != std::string::npos &&
      json.find("\"reports_per_sec\": ") != std::string::npos &&
      json.find("\"prof_hz\": ") != std::string::npos &&
      json.find("\"overhead_measurable\": ") != std::string::npos &&
      json.find("\"profiler_overhead_pct\": ") != std::string::npos &&
      json.rfind('}') > json.find('{');
  if (!shaped) {
    std::fprintf(stderr, "BENCH_prof_overhead.json malformed:\n%s\n",
                 json.c_str());
  }
  return shaped;
}

int run(bool smoke) {
  trace::TraceGenerator generator(trace::tiny(
      trace::boston_bombing(), smoke ? 8'000 : 240'000, smoke ? 10 : 200));
  const Dataset data = generator.generate();

  const obs::CpuProfilerConfig prof_config;  // default 97 Hz

  // Interleaved reps (off, armed, off, …) accumulated into one total per
  // mode: interleaving spreads clock drift and thermal state evenly, and
  // totalling beats best-of because a single lucky rep can no longer
  // swing a mode's headline number.
  const int reps = smoke ? 1 : 9;
  std::vector<ModePoint> modes(2);
  std::vector<std::vector<double>> rep_rps(2);
  for (int r = 0; r < reps; ++r) {
    for (int profiled = 0; profiled < 2; ++profiled) {
      ModePoint point = measure(data, profiled != 0, prof_config);
      rep_rps[static_cast<std::size_t>(profiled)].push_back(
          point.reports_per_sec());
      ModePoint& total = modes[static_cast<std::size_t>(profiled)];
      total.profiled = point.profiled;
      total.wall_s += point.wall_s;
      total.reports += point.reports;
      total.refits += point.refits;
      total.samples += point.samples;
      total.dropped += point.dropped;
    }
  }

  // Median of PAIRED per-round deltas: each round runs off and armed
  // back-to-back, so slow box drift (thermal, background load) hits both
  // sides of a pair equally and cancels in the ratio; the median then
  // shrugs off any single round hit by a burst of unrelated noise. A
  // totals- or per-mode-median estimate swings several percent on a
  // small box; the paired median is stable to well under 1%.
  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n == 0 ? 0.0
                  : (n % 2 != 0 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0);
  };
  std::vector<double> round_overhead_pct;
  for (int r = 0; r < reps; ++r) {
    const double off = rep_rps[0][static_cast<std::size_t>(r)];
    const double armed_rps = rep_rps[1][static_cast<std::size_t>(r)];
    if (off > 0.0) round_overhead_pct.push_back((off - armed_rps) / off * 100.0);
  }
  const double overhead_pct = median(round_overhead_pct);
  // Sub-half-second accumulated wall per mode means the delta is within
  // scheduler noise on a shared box — the number is reported but flagged
  // so the regression gate only enforces the cap on real (full) runs.
  const bool measurable =
      modes.front().wall_s >= 0.5 && modes.back().wall_s >= 0.5;

  TextTable table("Sampling-profiler overhead (DESIGN.md §5e)");
  table.set_columns(
      {"Profiler", "Wall s", "Reports/s", "Refits/s", "Samples", "Dropped"});
  for (const ModePoint& m : modes) {
    table.add_row({m.profiled ? "armed" : "off", TextTable::num(m.wall_s),
                   TextTable::num(m.reports_per_sec(), 0),
                   TextTable::num(m.refits_per_sec(), 0),
                   std::to_string(m.samples), std::to_string(m.dropped)});
  }
  table.print();
  std::printf("profiler throughput overhead at %d Hz: %.2f%%%s\n",
              prof_config.hz, overhead_pct,
              measurable ? "" : " (below noise floor: not gated)");

  emit_json(modes, overhead_pct, measurable, prof_config.hz,
            bench::scenario_provenance(generator.config(), data));
  return validate_json() ? 0 : 1;
}

}  // namespace
}  // namespace sstd

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  std::filesystem::create_directories("bench_results");
  return sstd::run(smoke);
}
