// Ablation A1 — the HMM design choices behind SSTD's accuracy:
//   * HMM decode vs raw sign(ACS) thresholding (is temporal smoothing real?)
//   * frozen-emission EM (default) vs full unsupervised EM vs no EM
//   * discrete quantized emissions vs Gaussian emissions
//   * per-claim models/scales vs pooled
//   * quantizer bin-count sweep
//   * ACS sliding-window width sweep
#include <cstdio>

#include "bench_common.h"
#include "core/acs.h"

using namespace sstd;

namespace {

ConfusionMatrix score(const Dataset& data, const SstdConfig& config) {
  SstdBatch sstd(config);
  EvalOptions eval;
  eval.window_ms =
      config.window_ms > 0 ? config.window_ms : data.interval_ms();
  return evaluate(data, sstd.run(data), eval);
}

ConfusionMatrix score_sign_threshold(const Dataset& data) {
  EvalOptions eval;
  eval.window_ms = data.interval_ms();
  EstimateMatrix estimates(data.num_claims());
  for (std::uint32_t u = 0; u < data.num_claims(); ++u) {
    const auto acs =
        build_acs_series(data.reports_of_claim(ClaimId{u}), data.intervals(),
                         data.interval_ms(), data.interval_ms());
    estimates[u].resize(data.intervals());
    for (IntervalIndex k = 0; k < data.intervals(); ++k) {
      estimates[u][k] = acs[k] > 0.0 ? 1 : 0;
    }
  }
  return evaluate(data, estimates, eval);
}

}  // namespace

int main() {
  trace::TraceGenerator generator(
      trace::tiny(trace::boston_bombing(), 150'000, 80));
  const Dataset data = generator.generate();
  std::printf("trace: %zu reports, %u claims\n\n", data.num_reports(),
              data.num_claims());

  TextTable table("Ablation A1: HMM design choices (Boston-like trace)");
  table.set_columns({"Variant", "Accuracy", "F1"});
  CsvWriter csv(bench::results_path("ablation_hmm.csv"));
  csv.header({"variant", "accuracy", "f1"});

  auto add = [&](const std::string& name, const ConfusionMatrix& cm) {
    table.add_row({name, TextTable::num(cm.accuracy()),
                   TextTable::num(cm.f1())});
    csv.row({name, CsvWriter::cell(cm.accuracy(), 4),
             CsvWriter::cell(cm.f1(), 4)});
  };

  add("SSTD (default)", score(data, SstdConfig{}));
  add("sign(ACS), no HMM", score_sign_threshold(data));

  {
    SstdConfig config;  // default freezes emissions
    config.train.max_iterations = 0;
    add("HMM prior only (no EM)", score(data, config));
  }
  {
    SstdConfig config;
    config.train.update_emissions = true;  // full unsupervised EM
    add("full EM (free emissions)", score(data, config));
  }
  {
    SstdConfig config;
    config.use_gaussian = true;
    add("Gaussian emissions", score(data, config));
  }
  {
    SstdConfig config;
    config.per_claim_models = false;
    add("pooled model (all claims)", score(data, config));
  }
  {
    SstdConfig config;
    config.per_claim_scale = false;
    add("global quantizer scale", score(data, config));
  }
  for (int bins : {3, 5, 9, 15}) {
    SstdConfig config;
    config.num_bins = bins;
    add("bins=" + std::to_string(bins), score(data, config));
  }
  for (int window_intervals : {2, 4, 8}) {
    SstdConfig config;
    config.window_ms = data.interval_ms() * window_intervals;
    add("ACS window=" + std::to_string(window_intervals) + " intervals",
        score(data, config));
  }

  table.print();
  return 0;
}
