// Reproduces Table IV — truth discovery accuracy on the Paris Shooting
// trace.
//
// Paper values for reference (Table IV): SSTD .802/.834/.905/.872,
// DynaTD .731/.822/.788/.805, TruthFinder .616/.653/.806/.721,
// RTD .753/.791/.823/.807, CATD .669/.689/.760/.723,
// Invest .661/.722/.780/.750, 3-Estimates .647/.704/.765/.733.
#include "bench_common.h"

using namespace sstd;

int main() {
  trace::TraceGenerator generator(trace::paris_shooting());
  const Dataset data = generator.generate();
  const auto scores = bench::score_all(data);
  bench::emit_accuracy_table(
      "Table IV: Truth Discovery Results - Paris Shooting",
      "table4_paris.csv", scores,
      bench::scenario_provenance(generator.config(), data));
  return 0;
}
