// Reproduces Table III — truth discovery accuracy on the Boston Bombing
// trace: SSTD vs the six baselines on Accuracy / Precision / Recall / F1.
//
// Paper values for reference (Zhang et al., ICDCS'17, Table III):
//   SSTD .828/.834/.831/.833, DynaTD .722/.811/.756/.783,
//   TruthFinder .653/.689/.787/.734, RTD .763/.748/.824/.784,
//   CATD .667/.764/.748/.751, Invest .609/.639/.626/.632,
//   3-Estimates .616/.626/.807/.705.
#include "bench_common.h"

using namespace sstd;

int main() {
  trace::TraceGenerator generator(trace::boston_bombing());
  const Dataset data = generator.generate();
  const auto scores = bench::score_all(data);
  bench::emit_accuracy_table(
      "Table III: Truth Discovery Results - Boston Bombing",
      "table3_boston.csv", scores,
      bench::scenario_provenance(generator.config(), data));
  return 0;
}
