// Ablation A5 — cluster heterogeneity. The paper's §I critique of Hadoop
// is that it "assumes homogeneity of the underlying computing nodes,
// which ignores the heterogeneity of the computational resources we have
// in real distributed systems". This bench quantifies what heterogeneity
// does to makespan on the simulated cluster:
//
//   * homogeneous pool vs heterogeneous pools of equal aggregate speed,
//     at several task granularities (many small tasks absorb speed skew;
//     one-task-per-job schedules straggle);
//   * a Hadoop-style synchronized-wave scheduler (barrier after every
//     wave of equal-sized partitions — the "datasets evenly partitioned
//     ... processed in a synchronized manner" assumption, §I) vs the Work
//     Queue pull model on the same heterogeneous pool.
#include <cstdio>

#include "bench_common.h"
#include "dist/sim_cluster.h"

using namespace sstd;
using dist::SimCluster;
using dist::SimConfig;
using dist::SimWorker;

namespace {

SimConfig hetero_sim() {
  SimConfig config;
  config.task_init_s = 0.1;
  config.theta1 = 1e-3;
  config.comm_per_unit_s = 1e-4;
  config.worker_stagger_s = 0.0;
  config.master_dispatch_s = 0.0;
  return config;
}

// Pools of 8 workers with equal total speed (8.0) and growing skew.
std::vector<SimWorker> make_pool(double skew) {
  // Half the workers at speed (1+skew), half at (1-skew).
  std::vector<SimWorker> workers(8);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i].speed = i < 4 ? 1.0 + skew : 1.0 - skew;
  }
  return workers;
}

double work_queue_makespan(std::vector<SimWorker> pool,
                           std::size_t num_tasks, double total_data) {
  SimCluster cluster(std::move(pool), hetero_sim());
  for (std::size_t i = 0; i < num_tasks; ++i) {
    dist::Task task;
    task.id = i;
    task.data_size = total_data / static_cast<double>(num_tasks);
    cluster.submit(task);
  }
  return cluster.run_to_completion();
}

// Hadoop-style synchronized waves: equal partitions, one per worker, and
// a barrier after each wave (no work stealing across the barrier).
double synchronized_makespan(const std::vector<SimWorker>& pool,
                             std::size_t num_tasks, double total_data) {
  const SimConfig sim = hetero_sim();
  const double per_task = total_data / static_cast<double>(num_tasks);
  double clock = 0.0;
  std::size_t remaining = num_tasks;
  while (remaining > 0) {
    const std::size_t wave = std::min(remaining, pool.size());
    double slowest = 0.0;
    for (std::size_t w = 0; w < wave; ++w) {
      const double exec =
          (sim.task_init_s + per_task * sim.theta1) / pool[w].speed +
          per_task * sim.comm_per_unit_s;
      slowest = std::max(slowest, exec);
    }
    clock += slowest;  // barrier: the wave ends when its straggler does
    remaining -= wave;
  }
  return clock;
}

}  // namespace

int main() {
  const double total_data = 400'000.0;  // ~400 s of single-speed compute

  TextTable table(
      "Ablation A5: heterogeneity — makespan [s], 8 workers, equal "
      "aggregate speed");
  table.set_columns({"Speed skew", "WQ 64 tasks", "WQ 16 tasks",
                     "WQ 8 tasks", "Sync waves (Hadoop-style, 64)"});
  CsvWriter csv(bench::results_path("ablation_hetero.csv"));
  csv.header({"skew", "wq64", "wq16", "wq8", "sync64"});

  for (double skew : {0.0, 0.2, 0.4, 0.6}) {
    const auto pool = make_pool(skew);
    const double wq64 = work_queue_makespan(pool, 64, total_data);
    const double wq16 = work_queue_makespan(pool, 16, total_data);
    const double wq8 = work_queue_makespan(pool, 8, total_data);
    const double sync64 = synchronized_makespan(pool, 64, total_data);
    table.add_row({TextTable::num(skew, 1), TextTable::num(wq64, 1),
                   TextTable::num(wq16, 1), TextTable::num(wq8, 1),
                   TextTable::num(sync64, 1)});
    csv.row({CsvWriter::cell(skew, 2), CsvWriter::cell(wq64, 2),
             CsvWriter::cell(wq16, 2), CsvWriter::cell(wq8, 2),
             CsvWriter::cell(sync64, 2)});
  }
  table.print();
  std::printf(
      "\n(Pull-model Work Queue with fine tasks is nearly skew-immune; "
      "coarse one-task-per-worker schedules and Hadoop-style synchronized "
      "waves straggle on the slow half — the paper's §I argument for a "
      "light-weight pull-based framework.)\n");
  return 0;
}
